//! The parallel FMM solver: Z-order domain decomposition by parallel sorting,
//! distributed tree construction with a locally essential set of multipoles,
//! near/far field evaluation, and the paper's two data redistribution paths
//! (restore-original vs. use-changed-with-resort-indices).

use std::collections::{HashMap, HashSet};

use atasp::{alltoall_specific, build_resort_indices, encode_index, ExchangeMode};
use particles::{MovementHint, RedistMethod, SolverOutput, SolverTimings, SystemBox, Vec3};
use psort::{
    merge_exchange_sort_by_key_capped, merge_exchange_sort_by_key_planned, partition_sort_by_key,
    SortPlan,
};
use simcomm::{Comm, Work};

use crate::expansion::ExpansionOps;
use crate::tree::{
    cell_center, cell_offset, cells_from_sorted, effective_source_center, interaction_list,
    leaf_key, neighbor_keys,
};

/// One particle as transported between ranks by the FMM solver: position,
/// charge, the application's global id, and the origin code
/// (`origin rank << 32 | origin position`) used to restore the original order
/// or to create resort indices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FmmParticle {
    /// Particle position.
    pub pos: Vec3,
    /// Particle charge.
    pub charge: f64,
    /// Application-level global particle id.
    pub id: u64,
    /// Origin code: `encode_index(origin_rank, origin_pos)`.
    pub origin: u64,
}

/// A computed particle traveling back to its origin (Method A).
#[derive(Clone, Copy, Debug)]
struct ResultParticle {
    pos: Vec3,
    charge: f64,
    id: u64,
    origin: u64,
    potential: f64,
    field: Vec3,
}

/// Static configuration of the FMM solver.
#[derive(Clone, Debug, PartialEq)]
pub struct FmmConfig {
    /// Expansion order (total degree of the Cartesian Taylor expansions).
    pub order: usize,
    /// Octree depth: `8^level` leaf cells.
    pub level: u32,
    /// Optional short-range repulsive core evaluated in the near field
    /// (see [`particles::coupling::SoftCore`]). `None` = pure Coulomb.
    pub soft_core: Option<particles::SoftCore>,
}

impl FmmConfig {
    /// Choose level and order for a given system size and target relative
    /// potential accuracy — the solver's tuning step (`fcs_tune`). The level
    /// aims at a mean leaf occupancy of ~16 particles (balancing the P2P and
    /// M2L work); the order is calibrated against direct summation in this
    /// crate's tests.
    pub fn tuned(n_total: u64, accuracy: f64) -> Self {
        let target_cells = (n_total as f64 / 16.0).max(1.0);
        let level = ((target_cells.ln() / 8.0f64.ln()).round() as u32).clamp(1, 20);
        let order = if accuracy >= 1e-2 {
            2
        } else if accuracy >= 1e-3 {
            4
        } else if accuracy >= 1e-4 {
            6
        } else {
            8
        };
        FmmConfig { order, level, soft_core: None }
    }
}

/// Report of one FMM execution (in addition to the generic [`SolverOutput`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FmmRunReport {
    /// Whether the merge-based parallel sort was used (Method B + movement).
    pub used_merge_sort: bool,
    /// Near-field pair interactions evaluated.
    pub p2p_pairs: u64,
    /// M2L translations evaluated.
    pub m2l_count: u64,
    /// Particles exchanged by the parallel sort (sent from this rank).
    pub sort_sent: u64,
    /// Merge-network rounds skipped outright via the cached [`SortPlan`].
    pub sort_rounds_plan_skipped: u64,
    /// Whether the movement-bound guard abandoned a capped merge sort (the
    /// hint under-reported the real displacement) and fell back to the
    /// general partition sort this run. Only ever set on fault-injected
    /// worlds; see [`FmmSolver::run`].
    pub movement_guard_fallback: bool,
}

/// The parallel Fast Multipole Method solver.
///
/// One instance lives on every rank; all methods that take a [`Comm`] are
/// collective (every rank of the world must call them in the same order).
pub struct FmmSolver {
    cfg: FmmConfig,
    bbox: SystemBox,
    periodic: bool,
    ops: ExpansionOps,
    /// Cache of M2L derivative tensors keyed by (level, relative cell offset).
    tensor_cache: HashMap<(u32, [i64; 3]), Vec<f64>>,
    /// Enable caching of the merge-sort probe schedule across timesteps.
    plan_cache: bool,
    /// Override for the movement-bound guard's cleanup-round cap
    /// (`None` = `2 + ceil(log2 p)` at run time).
    guard_cleanup_cap: Option<u64>,
    /// Probe schedule recorded by the previous merge-based sort, if clean.
    sort_plan: Option<SortPlan>,
    /// Sort plans recorded over the solver lifetime.
    pub plan_builds: u64,
    /// Runs that consumed a previously recorded sort plan.
    pub plan_hits: u64,
    /// Movement-bound guard fallbacks over the solver lifetime (capped merge
    /// sorts abandoned for the general partition sort).
    pub guard_fallbacks: u64,
    /// Report of the most recent run.
    pub last_report: FmmRunReport,
}

impl FmmSolver {
    /// Create a solver for the given box and configuration. The box must be
    /// either fully periodic or fully open.
    pub fn new(bbox: SystemBox, cfg: FmmConfig) -> Self {
        let periodic = bbox.fully_periodic();
        assert!(
            periodic || bbox.periodic.iter().all(|&p| !p),
            "mixed periodicity is not supported"
        );
        let ops = ExpansionOps::new(cfg.order);
        FmmSolver {
            cfg,
            bbox,
            periodic,
            ops,
            tensor_cache: HashMap::new(),
            plan_cache: true,
            guard_cleanup_cap: None,
            sort_plan: None,
            plan_builds: 0,
            plan_hits: 0,
            guard_fallbacks: 0,
            last_report: FmmRunReport::default(),
        }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &FmmConfig {
        &self.cfg
    }

    /// Enable or disable cross-timestep caching of the merge-sort probe
    /// schedule (on by default). Disabling drops the cached plan, restoring
    /// the pre-plan behaviour of probing every network round afresh. Must be
    /// set identically on all ranks (the plan gate is collective).
    pub fn set_plan_cache(&mut self, enabled: bool) {
        self.plan_cache = enabled;
        if !enabled {
            self.sort_plan = None;
        }
    }

    /// Override the movement-bound guard's cleanup-round cap (`None`, the
    /// default, uses `2 + ceil(log2 p)`). A tighter cap makes the guard more
    /// eager to abandon a degenerating merge sort for the general partition
    /// sort; `Some(0)` falls back on *any* input the merge network leaves
    /// globally unsorted. Only consulted on fault-injected worlds, and must
    /// be set identically on every rank (the cap decision is collective).
    pub fn set_guard_cleanup_cap(&mut self, cap: Option<u64>) {
        self.guard_cleanup_cap = cap;
    }

    /// Drop all cached cross-timestep planning state (the recorded merge-sort
    /// probe schedule). Recovery paths that rewind the simulation call this
    /// on every rank before replaying: a schedule recorded past the rollback
    /// point describes executions that are about to be repeated, and plan
    /// state is bitwise invisible to the physics, so dropping it is always
    /// safe.
    pub fn invalidate_plans(&mut self) {
        self.sort_plan = None;
    }

    /// Execute the solver: compute potentials and field values for the given
    /// local particles, redistributing particle data according to `method`.
    ///
    /// * `method` = [`RedistMethod::RestoreOriginal`]: output arrays are in
    ///   the exact order and distribution of the input (Method A).
    /// * `method` = [`RedistMethod::UseChanged`]: output arrays are in the
    ///   solver's Z-order distribution, with resort indices for the
    ///   application's additional data (Method B). Falls back to restoring if
    ///   any rank would exceed `max_local` particles.
    ///
    /// `movement` enables the merge-based parallel sort when the maximum
    /// particle movement is below the per-process cube side (paper heuristic,
    /// Sect. III-B); it is only honoured for [`RedistMethod::UseChanged`].
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        id: &[u64],
        method: RedistMethod,
        movement: MovementHint,
        max_local: usize,
    ) -> SolverOutput {
        let n_in = pos.len();
        assert_eq!(charge.len(), n_in);
        assert_eq!(id.len(), n_in);
        let me = comm.rank();
        let p = comm.size();
        self.last_report = FmmRunReport::default();
        let t_start = comm.clock();
        comm.enter_phase("sort");

        // --- Keys and records ---
        let mut keys: Vec<u64> = Vec::with_capacity(n_in);
        let mut recs: Vec<FmmParticle> = Vec::with_capacity(n_in);
        for i in 0..n_in {
            keys.push(leaf_key(&self.bbox, pos[i], self.cfg.level));
            recs.push(FmmParticle {
                pos: pos[i],
                charge: charge[i],
                id: id[i],
                origin: encode_index(me, i),
            });
        }
        comm.compute(Work::ParticleOp, n_in as f64);

        // --- Parallel sort (paper heuristic: merge-based iff the maximum
        // movement is below the per-process cube side) ---
        let use_merge = method == RedistMethod::UseChanged
            && movement.is_some_and(|m| m < self.bbox.per_process_cube_side(p));
        self.last_report.used_merge_sort = use_merge;
        let (mut keys, mut recs) = if use_merge {
            // Consume the probe schedule the previous merge sort recorded (if
            // caching is on); record this sort's schedule for the next step.
            // `use_merge` and the plan's presence are globally consistent, so
            // all ranks pass a plan from the same previous execution.
            let prior = if self.plan_cache { self.sort_plan.take() } else { None };
            let had_prior = prior.is_some();
            // Movement-bound guard (fault-injected worlds only): if the hint
            // under-reported the real displacement, merge-exchange cleanup can
            // degenerate into a full O(p)-round transposition. Cap it and keep
            // a pristine copy of the input so a capped-out sort falls back to
            // the general partition sort below. `fault_active` and `p` are
            // global, so the guard engages collectively; inert fault plans
            // take the uncapped path with no backup — bit-for-bit the
            // unguarded behaviour.
            let guarded = comm.fault_active();
            let backup = guarded.then(|| (keys.clone(), recs.clone()));
            let (k, r, rep, next) = if guarded {
                let cap = self.guard_cleanup_cap.unwrap_or(2 + (p as f64).log2().ceil() as u64);
                merge_exchange_sort_by_key_capped(comm, keys, recs, prior.as_ref(), cap)
            } else {
                merge_exchange_sort_by_key_planned(comm, keys, recs, prior.as_ref())
            };
            if rep.cleanup_cap_hit {
                // The movement bound was violated: the data was not almost
                // sorted and the merge network capped out before reaching
                // global order. Abandon its result, invalidate the cached
                // schedule, and run the general sort on the pristine input
                // (identical input → identical output to a run that chose
                // the partition sort up front).
                let (bk, br) = backup.expect("cap can only be hit on guarded runs");
                self.last_report.movement_guard_fallback = true;
                self.guard_fallbacks += 1;
                self.sort_plan = None;
                let (k, r, rep2) = partition_sort_by_key(comm, bk, br);
                self.last_report.sort_sent = rep.sent_elems + rep2.sent_elems;
                (k, r)
            } else {
                self.last_report.sort_sent = rep.sent_elems;
                self.last_report.sort_rounds_plan_skipped = rep.rounds_plan_skipped;
                if had_prior {
                    self.plan_hits += 1;
                } else if next.is_some() {
                    self.plan_builds += 1;
                }
                if self.plan_cache {
                    self.sort_plan = next;
                }
                (k, r)
            }
        } else {
            // A partition sort rebalances the whole distribution; any recorded
            // probe schedule is stale afterwards (dropped on every rank —
            // `use_merge` is a collective decision).
            self.sort_plan = None;
            let (k, r, rep) = partition_sort_by_key(comm, keys, recs);
            self.last_report.sort_sent = rep.sent_elems;
            (k, r)
        };

        // --- Align cells to rank boundaries (each leaf cell wholly owned by
        // the lowest rank holding any of its particles) ---
        self.align_cells(comm, &mut keys, &mut recs);
        comm.exit_phase();
        let t_sorted = comm.clock();

        // --- Compute near + far field on the sorted particles ---
        let (potential, field) = self.compute_fields(comm, &keys, &recs);
        // Synchronize before the redistribution phase so that compute load
        // imbalance is attributed to the computation, not to the timing of
        // the redistribution that happens to follow it.
        comm.barrier();
        let t_computed = comm.clock();

        // --- Redistribution back to the application ---
        let original_len = n_in;
        match method {
            RedistMethod::RestoreOriginal => {
                comm.enter_phase("restore");
                let mut out = self.restore_original(comm, &recs, &potential, &field, original_len);
                comm.exit_phase();
                out.timings = SolverTimings {
                    sort: t_sorted - t_start,
                    compute: t_computed - t_sorted,
                    restore: comm.clock() - t_computed,
                    resort_create: 0.0,
                    total: comm.clock() - t_start,
                };
                out
            }
            RedistMethod::UseChanged => {
                // Capacity check across all ranks (paper: "the redistributed
                // particles of a solver can only be returned … if the given
                // local particle data arrays are large enough").
                let fits = recs.len() <= max_local;
                let all_fit = comm.allreduce(fits, |a, b| a && b);
                if !all_fit {
                    comm.enter_phase("restore");
                    let mut out =
                        self.restore_original(comm, &recs, &potential, &field, original_len);
                    comm.exit_phase();
                    out.timings = SolverTimings {
                        sort: t_sorted - t_start,
                        compute: t_computed - t_sorted,
                        restore: comm.clock() - t_computed,
                        resort_create: 0.0,
                        total: comm.clock() - t_start,
                    };
                    return out;
                }
                let origin: Vec<u64> = recs.iter().map(|r| r.origin).collect();
                comm.enter_phase("resort");
                let resort_indices = build_resort_indices(comm, &origin, original_len);
                comm.exit_phase();
                let t_resort = comm.clock();
                let out = SolverOutput {
                    pos: recs.iter().map(|r| r.pos).collect(),
                    charge: recs.iter().map(|r| r.charge).collect(),
                    id: recs.iter().map(|r| r.id).collect(),
                    potential,
                    field,
                    resorted: true,
                    resort_indices,
                    timings: SolverTimings {
                        sort: t_sorted - t_start,
                        compute: t_computed - t_sorted,
                        restore: 0.0,
                        resort_create: t_resort - t_computed,
                        total: comm.clock() - t_start,
                    },
                };
                out
            }
        }
    }

    /// Route every computed particle back to its origin rank and position
    /// (paper Fig. 4).
    fn restore_original(
        &self,
        comm: &mut Comm,
        recs: &[FmmParticle],
        potential: &[f64],
        field: &[Vec3],
        original_len: usize,
    ) -> SolverOutput {
        let results: Vec<ResultParticle> = recs
            .iter()
            .enumerate()
            .map(|(i, r)| ResultParticle {
                pos: r.pos,
                charge: r.charge,
                id: r.id,
                origin: r.origin,
                potential: potential[i],
                field: field[i],
            })
            .collect();
        let targets: Vec<usize> = recs.iter().map(|r| atasp::decode_index(r.origin).0).collect();
        let received = alltoall_specific(comm, &results, &targets, &ExchangeMode::Collective);
        assert_eq!(received.len(), original_len);
        let mut out = SolverOutput {
            pos: vec![Vec3::ZERO; original_len],
            charge: vec![0.0; original_len],
            id: vec![0; original_len],
            potential: vec![0.0; original_len],
            field: vec![Vec3::ZERO; original_len],
            resorted: false,
            resort_indices: Vec::new(),
            timings: SolverTimings::default(),
        };
        for r in received {
            let (_, pos_ix) = atasp::decode_index(r.origin);
            out.pos[pos_ix] = r.pos;
            out.charge[pos_ix] = r.charge;
            out.id[pos_ix] = r.id;
            out.potential[pos_ix] = r.potential;
            out.field[pos_ix] = r.field;
        }
        comm.compute(Work::ByteCopy, (original_len * std::mem::size_of::<ResultParticle>()) as f64);
        out
    }

    /// Move leading particles of shared boundary cells to the lowest rank
    /// holding the cell, so every leaf cell is wholly owned afterwards.
    fn align_cells(&self, comm: &mut Comm, keys: &mut Vec<u64>, recs: &mut Vec<FmmParticle>) {
        let p = comm.size();
        if p == 1 {
            return;
        }
        let me = comm.rank();
        let ranges = comm.allgather((keys.first().copied(), keys.last().copied()));
        // Owner of key k: the lowest rank whose range contains k.
        let owner = |k: u64| -> usize {
            for (r, &(f, l)) in ranges.iter().enumerate() {
                if let (Some(f), Some(l)) = (f, l) {
                    if f <= k && k <= l {
                        return r;
                    }
                }
            }
            unreachable!("key {k} not in any range")
        };
        let mut to_send: Vec<(usize, Vec<FmmParticle>)> = Vec::new();
        let mut cut = 0usize;
        if let Some(&first) = keys.first() {
            let own = owner(first);
            if own != me {
                // My whole leading run of `first` (possibly the entire array)
                // belongs to `own`.
                cut = keys.iter().take_while(|&&k| k == first).count();
                to_send.push((own, recs[..cut].to_vec()));
            }
        }
        let sends: Vec<(usize, Vec<FmmParticle>)> = to_send;
        let received = comm.alltoallv(sends);
        if cut > 0 {
            keys.drain(..cut);
            recs.drain(..cut);
        }
        // Received particles all carry my last key (they continue my run);
        // append in source-rank order.
        for (_src, buf) in received {
            for r in buf {
                let k = leaf_key(&self.bbox, r.pos, self.cfg.level);
                debug_assert!(keys.last().is_none_or(|&l| l <= k));
                keys.push(k);
                recs.push(r);
            }
        }
    }

    /// Full near + far field evaluation on the (sorted, aligned) particles.
    fn compute_fields(
        &mut self,
        comm: &mut Comm,
        keys: &[u64],
        recs: &[FmmParticle],
    ) -> (Vec<f64>, Vec<Vec3>) {
        let n = keys.len();
        let nc = self.ops.len();
        let leaf_level = self.cfg.level;
        let periodic = self.periodic;
        let me = comm.rank();

        let leaf_cells = cells_from_sorted(keys);
        let cell_index: HashMap<u64, usize> =
            leaf_cells.iter().enumerate().map(|(i, (k, _))| (*k, i)).collect();

        // Rank ranges at leaf level for ownership lookups.
        let ranges = comm.allgather((keys.first().copied(), keys.last().copied()));
        let owner_of = |k: u64| -> Option<usize> {
            ranges
                .iter()
                .position(|&(f, l)| matches!((f, l), (Some(f), Some(l)) if f <= k && k <= l))
        };

        // ---- Ghost exchange for the near field ----
        // For each local cell, ranks owning (wrapped) neighbour keys receive a
        // copy of the cell's particles.
        comm.enter_phase("near");
        let mut ghost_sends: HashMap<usize, Vec<FmmParticle>> = HashMap::new();
        for (k, range) in &leaf_cells {
            let mut dests: HashSet<usize> = HashSet::new();
            for nk in neighbor_keys(*k, leaf_level, periodic) {
                if let Some(o) = owner_of(nk) {
                    if o != me {
                        dests.insert(o);
                    }
                }
            }
            for d in dests {
                ghost_sends.entry(d).or_default().extend_from_slice(&recs[range.clone()]);
            }
        }
        let sends: Vec<(usize, Vec<FmmParticle>)> = ghost_sends.into_iter().collect();
        let received_ghosts = comm.alltoallv(sends);
        let mut ghost_cells: HashMap<u64, Vec<FmmParticle>> = HashMap::new();
        let mut ghost_count = 0u64;
        for (_src, buf) in received_ghosts {
            ghost_count += buf.len() as u64;
            for g in buf {
                let k = leaf_key(&self.bbox, g.pos, leaf_level);
                ghost_cells.entry(k).or_default().push(g);
            }
        }
        comm.compute(
            Work::ByteCopy,
            (ghost_count as usize * std::mem::size_of::<FmmParticle>()) as f64,
        );
        comm.exit_phase();

        // ---- Upward pass: P2M + M2M (partial multipoles per level) ----
        comm.enter_phase("tree");
        // levels: index l in 0..=leaf_level; multipoles[l]: key -> coeffs.
        let mut multipoles: Vec<HashMap<u64, Vec<f64>>> =
            (0..=leaf_level).map(|_| HashMap::new()).collect();
        for (k, range) in &leaf_cells {
            let z = cell_center(&self.bbox, *k, leaf_level);
            let m = multipoles[leaf_level as usize].entry(*k).or_insert_with(|| vec![0.0; nc]);
            for r in &recs[range.clone()] {
                self.ops.p2m(m, z, r.pos, r.charge);
            }
            comm.compute(Work::ExpansionTerm, (range.len() * nc) as f64);
        }
        for l in (1..=leaf_level).rev() {
            let (coarse, fine) = {
                let (a, b) = multipoles.split_at_mut(l as usize);
                (&mut a[l as usize - 1], &b[0])
            };
            let mut ops_count = 0usize;
            for (k, m) in fine {
                let parent = particles::zorder::parent(*k);
                let zp = cell_center(&self.bbox, parent, l - 1);
                let zc = cell_center(&self.bbox, *k, l);
                let pm = coarse.entry(parent).or_insert_with(|| vec![0.0; nc]);
                self.ops.m2m(pm, m, zc, zp);
                ops_count += 1;
            }
            comm.compute(Work::ExpansionTerm, (ops_count * nc * nc / 4) as f64);
        }

        // ---- Target cells: ancestors of local leaves, per level ----
        let mut targets: Vec<Vec<u64>> = (0..=leaf_level).map(|_| Vec::new()).collect();
        targets[leaf_level as usize] = leaf_cells.iter().map(|(k, _)| *k).collect();
        for l in (1..=leaf_level).rev() {
            let mut up: Vec<u64> =
                targets[l as usize].iter().map(|&k| particles::zorder::parent(k)).collect();
            up.sort_unstable();
            up.dedup();
            targets[l as usize - 1] = up;
        }

        comm.exit_phase();

        // ---- Locally essential multipoles: request remote (partial)
        comm.enter_phase("far");
        // multipoles for all interaction-list source cells ----
        // A cell (l, k) spans leaf keys [k << s, (k+1) << s) with s = 3*(L-l);
        // every rank whose range intersects that interval may hold a partial.
        let mut needed: HashSet<(u32, u64)> = HashSet::new();
        for l in 1..=leaf_level {
            for &t in &targets[l as usize] {
                for s in interaction_list(t, l, periodic) {
                    needed.insert((l, s));
                }
            }
        }
        let mut requests: HashMap<usize, Vec<(u32, u64)>> = HashMap::new();
        for &(l, k) in &needed {
            let shift = 3 * (leaf_level - l);
            let lo = k << shift;
            let hi = ((k + 1) << shift) - 1;
            for (r, &(f, last)) in ranges.iter().enumerate() {
                if r == me {
                    continue;
                }
                if let (Some(f), Some(last)) = (f, last) {
                    if f <= hi && lo <= last {
                        requests.entry(r).or_default().push((l, k));
                    }
                }
            }
        }
        let req_sends: Vec<(usize, Vec<(u32, u64)>)> = requests.into_iter().collect();
        let req_recv = comm.alltoallv(req_sends);
        // Respond with (meta, coeffs) pairs; coeffs flattened with stride nc.
        let mut resp_meta: Vec<(usize, Vec<(u32, u64)>)> = Vec::new();
        let mut resp_coef: Vec<(usize, Vec<f64>)> = Vec::new();
        for (src, reqs) in req_recv {
            let mut meta = Vec::new();
            let mut coef = Vec::new();
            for (l, k) in reqs {
                if let Some(m) = multipoles[l as usize].get(&k) {
                    meta.push((l, k));
                    coef.extend_from_slice(m);
                }
            }
            comm.compute(Work::ByteCopy, (coef.len() * 8) as f64);
            resp_meta.push((src, meta));
            resp_coef.push((src, coef));
        }
        let meta_recv = comm.alltoallv(resp_meta);
        let coef_recv = comm.alltoallv(resp_coef);
        let coef_by_src: HashMap<usize, Vec<f64>> = coef_recv.into_iter().collect();
        let mut remote_m: HashMap<(u32, u64), Vec<f64>> = HashMap::new();
        for (src, meta) in meta_recv {
            let coefs = &coef_by_src[&src];
            for (i, (l, k)) in meta.into_iter().enumerate() {
                let slice = &coefs[i * nc..(i + 1) * nc];
                let entry = remote_m.entry((l, k)).or_insert_with(|| vec![0.0; nc]);
                for (e, &c) in entry.iter_mut().zip(slice) {
                    *e += c;
                }
            }
        }

        // ---- Downward pass: M2L + L2L ----
        let mut locals: Vec<HashMap<u64, Vec<f64>>> =
            (0..=leaf_level).map(|_| HashMap::new()).collect();
        let mut m2l_count = 0u64;
        for l in 1..=leaf_level {
            let target_keys: Vec<u64> = targets[l as usize].clone();
            for &t in &target_keys {
                let mut acc = vec![0.0; nc];
                // L2L from the parent's local expansion.
                if l >= 1 {
                    let parent = particles::zorder::parent(t);
                    if let Some(pl) = locals[l as usize - 1].get(&parent) {
                        let wp = cell_center(&self.bbox, parent, l - 1);
                        let wc = cell_center(&self.bbox, t, l);
                        self.ops.l2l(&mut acc, pl, wp, wc);
                    }
                }
                // M2L from the interaction list.
                let w = cell_center(&self.bbox, t, l);
                for s in interaction_list(t, l, periodic) {
                    // Combine local partial and fetched remote partials.
                    let local_part = multipoles[l as usize].get(&s);
                    let remote_part = remote_m.get(&(l, s));
                    if local_part.is_none() && remote_part.is_none() {
                        continue; // empty cell
                    }
                    let off = cell_offset(t, s, l, periodic);
                    let zs = effective_source_center(&self.bbox, t, s, l, periodic);
                    let cache_key = (l, [off[0], off[1], off[2]]);
                    let tensor = match self.tensor_cache.get(&cache_key) {
                        Some(t) => t.clone(),
                        None => {
                            let t = self.ops.derivative_tensor(w - zs);
                            self.tensor_cache.insert(cache_key, t.clone());
                            t
                        }
                    };
                    if let Some(m) = local_part {
                        self.ops.m2l_with_tensor(&mut acc, m, &tensor);
                        m2l_count += 1;
                    }
                    if let Some(m) = remote_part {
                        self.ops.m2l_with_tensor(&mut acc, m, &tensor);
                        m2l_count += 1;
                    }
                }
                locals[l as usize].insert(t, acc);
            }
            comm.compute(Work::ExpansionTerm, (target_keys.len().max(1) * nc * nc / 8) as f64);
        }
        comm.compute(Work::ExpansionTerm, (m2l_count as usize * nc * nc) as f64);
        comm.exit_phase();
        self.last_report.m2l_count = m2l_count;

        // ---- Evaluation: L2P + near-field P2P ----
        let mut potential = vec![0.0; n];
        let mut field = vec![Vec3::ZERO; n];
        let mut p2p_pairs = 0u64;
        for (k, range) in &leaf_cells {
            let w = cell_center(&self.bbox, *k, leaf_level);
            if let Some(loc) = locals[leaf_level as usize].get(k) {
                for i in range.clone() {
                    let (phi, e) = self.ops.l2p(loc, w, recs[i].pos);
                    potential[i] += phi;
                    field[i] += e;
                }
            }
            // P2P within the cell.
            for i in range.clone() {
                for j in (i + 1)..range.end {
                    let d = recs[i].pos - recs[j].pos;
                    let r2 = d.norm2();
                    if r2 == 0.0 {
                        continue;
                    }
                    let inv_r = 1.0 / r2.sqrt();
                    let inv_r3 = inv_r / r2;
                    potential[i] += recs[j].charge * inv_r;
                    potential[j] += recs[i].charge * inv_r;
                    field[i] += d * (recs[j].charge * inv_r3);
                    field[j] -= d * (recs[i].charge * inv_r3);
                    if let Some(core) = &self.cfg.soft_core {
                        // Pair repulsion folded into the potential/field
                        // channels (divide by the receiving charge so that
                        // 0.5*q*phi and q*E reproduce pair energy and force).
                        let r = r2.sqrt();
                        let u = core.energy(r);
                        let fmag = core.force(r);
                        potential[i] += u / recs[i].charge;
                        potential[j] += u / recs[j].charge;
                        field[i] += d * (fmag / (r * recs[i].charge));
                        field[j] -= d * (fmag / (r * recs[j].charge));
                    }
                    p2p_pairs += 1;
                }
            }
            // P2P with neighbour cells (local or ghost).
            for nk in neighbor_keys(*k, leaf_level, periodic) {
                let neigh: Option<&[FmmParticle]> = if let Some(&ci) = cell_index.get(&nk) {
                    Some(&recs[leaf_cells[ci].1.clone()])
                } else {
                    ghost_cells.get(&nk).map(|v| v.as_slice())
                };
                let Some(neigh) = neigh else { continue };
                for i in range.clone() {
                    for g in neigh {
                        let d = if periodic {
                            self.bbox.min_image(recs[i].pos, g.pos)
                        } else {
                            recs[i].pos - g.pos
                        };
                        let r2 = d.norm2();
                        if r2 == 0.0 {
                            continue;
                        }
                        let inv_r = 1.0 / r2.sqrt();
                        let inv_r3 = inv_r / r2;
                        potential[i] += g.charge * inv_r;
                        field[i] += d * (g.charge * inv_r3);
                        if let Some(core) = &self.cfg.soft_core {
                            let r = r2.sqrt();
                            let u = core.energy(r);
                            let fmag = core.force(r);
                            potential[i] += u / recs[i].charge;
                            field[i] += d * (fmag / (r * recs[i].charge));
                        }
                        p2p_pairs += 1;
                    }
                }
            }
        }
        comm.with_phase("near", |c| c.compute(Work::Interaction, p2p_pairs as f64));
        comm.with_phase("far", |c| c.compute(Work::ExpansionTerm, (n * nc * 4) as f64));
        self.last_report.p2p_pairs = p2p_pairs;

        (potential, field)
    }
}
