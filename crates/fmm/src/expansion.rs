//! Cartesian Taylor multipole and local expansions for the Laplace kernel
//! `G(r) = 1/|r|`, with the standard FMM translation operators
//! (P2M, M2M, M2L, L2L, L2P).
//!
//! Conventions (multi-index `k = (k1, k2, k3)`, `|k| = k1+k2+k3 <= p`):
//!
//! * multipole about center `z`:  `M_k = sum_j q_j (x_j - z)^k / k!`
//! * potential:                   `phi(y) = sum_k M_k (-1)^{|k|} T_k(y - z)`
//!   with `T_k = D^k G`
//! * local expansion about `w`:   `phi(y) = sum_n L_n (y - w)^n`
//!   with `L_n = (1/n!) sum_k M_k (-1)^{|k|} T_{n+k}(w - z)`
//!
//! The derivative tensors `T_k` are produced by the recurrence
//! `n r^2 T_k = -(2n-1) sum_d r_d k_d T_{k-e_d} - (n-1) sum_d k_d (k_d-1) T_{k-2e_d}`
//! (`n = |k|`), verified in the tests against symbolic derivatives.

use particles::Vec3;

/// Precomputed tables for expansions of order `p`: the multi-index
/// enumeration (graded ordering), inverse factorials, child/neighbour lookup
/// tables and translation pair lists.
#[derive(Clone, Debug)]
pub struct ExpansionOps {
    /// Expansion order (maximum total degree).
    pub order: usize,
    /// Multi-indices `(i, j, k)` with `i+j+k <= order`, graded by total degree.
    pub midx: Vec<[u8; 3]>,
    /// Multi-indices up to `2 * order` (for derivative tensors used in M2L).
    pub midx2: Vec<[u8; 3]>,
    /// Lookup: dense index of a multi-index up to `2*order`.
    lookup2: Vec<u32>,
    /// 1 / k! per multi-index of `midx`.
    pub inv_fact: Vec<f64>,
    /// M2L pair list: (target n index, source k index, tensor n+k index, parity sign * 1/n!).
    m2l_pairs: Vec<(u32, u32, u32, f64)>,
    /// M2M pair list: (target k, source m, diff k-m). Factor 1/(k-m)! applied via inv_fact of diff.
    m2m_pairs: Vec<(u32, u32, u32)>,
    /// L2L pair list: (target n, source m, diff m-n, multinomial binom(m, n)).
    l2l_pairs: Vec<(u32, u32, u32, f64)>,
}

/// Number of multi-indices with total degree `<= p`.
pub fn ncoeffs(p: usize) -> usize {
    (p + 1) * (p + 2) * (p + 3) / 6
}

fn gen_midx(p: usize) -> Vec<[u8; 3]> {
    let mut v = Vec::with_capacity(ncoeffs(p));
    for total in 0..=p {
        for i in (0..=total).rev() {
            for j in (0..=(total - i)).rev() {
                let k = total - i - j;
                v.push([i as u8, j as u8, k as u8]);
            }
        }
    }
    v
}

impl ExpansionOps {
    /// Build the tables for expansion order `p` (`p <= 10` supported).
    pub fn new(p: usize) -> Self {
        assert!(p <= 10, "expansion order too large");
        let midx = gen_midx(p);
        let midx2 = gen_midx(2 * p);
        // Dense lookup over (i, j, k) with each component <= 2p.
        let dim = 2 * p + 1;
        let mut lookup2 = vec![u32::MAX; dim * dim * dim];
        for (ix, m) in midx2.iter().enumerate() {
            let off = (m[0] as usize * dim + m[1] as usize) * dim + m[2] as usize;
            lookup2[off] = ix as u32;
        }
        let look = |m: [usize; 3]| -> u32 { lookup2[(m[0] * dim + m[1]) * dim + m[2]] };
        let fact = |n: u8| -> f64 { (1..=n as u64).product::<u64>() as f64 };
        let inv_fact: Vec<f64> =
            midx.iter().map(|m| 1.0 / (fact(m[0]) * fact(m[1]) * fact(m[2]))).collect();

        // M2L: L_n += (1/n!) * (-1)^{|k|} M_k T_{n+k}
        let mut m2l_pairs = Vec::new();
        for (ni, n) in midx.iter().enumerate() {
            let inv_nf = inv_fact[ni];
            for (ki, k) in midx.iter().enumerate() {
                let nk = [(n[0] + k[0]) as usize, (n[1] + k[1]) as usize, (n[2] + k[2]) as usize];
                let t = look(nk);
                debug_assert!(t != u32::MAX);
                let sign = if (k[0] + k[1] + k[2]) % 2 == 0 { 1.0 } else { -1.0 };
                m2l_pairs.push((ni as u32, ki as u32, t, sign * inv_nf));
            }
        }

        // M2M: M'_k += M_m d^{k-m} / (k-m)!   (m <= k componentwise)
        let mut m2m_pairs = Vec::new();
        let lookup_p: std::collections::HashMap<[u8; 3], u32> =
            midx.iter().enumerate().map(|(i, m)| (*m, i as u32)).collect();
        for (ki, k) in midx.iter().enumerate() {
            for (mi, m) in midx.iter().enumerate() {
                if m[0] <= k[0] && m[1] <= k[1] && m[2] <= k[2] {
                    let diff = [k[0] - m[0], k[1] - m[1], k[2] - m[2]];
                    let di = lookup_p[&diff];
                    m2m_pairs.push((ki as u32, mi as u32, di));
                }
            }
        }

        // L2L: L'_n += L_m binom(m, n) d^{m-n}   (n <= m componentwise)
        let binom = |a: u8, b: u8| -> f64 { (fact(a)) / (fact(b) * fact(a - b)) };
        let mut l2l_pairs = Vec::new();
        for (ni, n) in midx.iter().enumerate() {
            for (mi, m) in midx.iter().enumerate() {
                if n[0] <= m[0] && n[1] <= m[1] && n[2] <= m[2] {
                    let diff = [m[0] - n[0], m[1] - n[1], m[2] - n[2]];
                    let di = lookup_p[&diff];
                    let b = binom(m[0], n[0]) * binom(m[1], n[1]) * binom(m[2], n[2]);
                    l2l_pairs.push((ni as u32, mi as u32, di, b));
                }
            }
        }

        ExpansionOps { order: p, midx, midx2, lookup2, inv_fact, m2l_pairs, m2m_pairs, l2l_pairs }
    }

    /// Number of coefficients of an order-`p` expansion.
    pub fn len(&self) -> usize {
        self.midx.len()
    }

    /// True if the expansion has no coefficients (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.midx.is_empty()
    }

    /// Monomial powers `d^m` for all multi-indices `m` up to `order`.
    fn monomials(&self, d: Vec3) -> Vec<f64> {
        let p = self.order;
        let mut pw = [[0.0f64; 16]; 3];
        for (c, pwc) in pw.iter_mut().enumerate() {
            pwc[0] = 1.0;
            for e in 1..=p {
                pwc[e] = pwc[e - 1] * d[c];
            }
        }
        self.midx
            .iter()
            .map(|m| pw[0][m[0] as usize] * pw[1][m[1] as usize] * pw[2][m[2] as usize])
            .collect()
    }

    /// Derivative tensors `T_k(r) = D^k (1/|r|)` for all `|k| <= 2*order`.
    pub fn derivative_tensor(&self, r: Vec3) -> Vec<f64> {
        let r2 = r.norm2();
        assert!(r2 > 0.0, "derivative tensor at the origin");
        let dim = 2 * self.order + 1;
        let look = |m: [i32; 3]| -> Option<u32> {
            if m.iter().any(|&c| c < 0) {
                return None;
            }
            let off = (m[0] as usize * dim + m[1] as usize) * dim + m[2] as usize;
            let ix = self.lookup2[off];
            (ix != u32::MAX).then_some(ix)
        };
        let mut t = vec![0.0f64; self.midx2.len()];
        t[0] = 1.0 / r2.sqrt();
        for (ix, m) in self.midx2.iter().enumerate().skip(1) {
            let n = (m[0] + m[1] + m[2]) as f64;
            let mut acc = 0.0;
            for d in 0..3usize {
                let kd = m[d] as f64;
                if m[d] >= 1 {
                    let mut e1 = [m[0] as i32, m[1] as i32, m[2] as i32];
                    e1[d] -= 1;
                    let prev = look(e1).expect("graded order guarantees presence");
                    acc += -(2.0 * n - 1.0) * r[d] * kd * t[prev as usize];
                }
                if m[d] >= 2 {
                    let mut e2 = [m[0] as i32, m[1] as i32, m[2] as i32];
                    e2[d] -= 2;
                    let prev = look(e2).expect("graded order guarantees presence");
                    acc += -(n - 1.0) * kd * (kd - 1.0) * t[prev as usize];
                }
            }
            t[ix] = acc / (n * r2);
        }
        t
    }

    /// P2M: accumulate a charge at position `x` into a multipole about `z`.
    pub fn p2m(&self, m: &mut [f64], z: Vec3, x: Vec3, q: f64) {
        debug_assert_eq!(m.len(), self.len());
        let mono = self.monomials(x - z);
        for (i, (mm, mo)) in m.iter_mut().zip(&mono).enumerate() {
            *mm += q * mo * self.inv_fact[i];
        }
    }

    /// M2M: translate a child multipole (center `zc`) into the parent
    /// expansion (center `zp`), accumulating.
    pub fn m2m(&self, parent: &mut [f64], child: &[f64], zc: Vec3, zp: Vec3) {
        let mono = self.monomials(zc - zp);
        for &(ki, mi, di) in &self.m2m_pairs {
            parent[ki as usize] +=
                child[mi as usize] * mono[di as usize] * self.inv_fact[di as usize];
        }
    }

    /// M2L with a precomputed derivative tensor `t = T(w - z)` (use
    /// [`Self::derivative_tensor`]); accumulates into the local expansion.
    pub fn m2l_with_tensor(&self, local: &mut [f64], multipole: &[f64], t: &[f64]) {
        for &(ni, ki, ti, f) in &self.m2l_pairs {
            local[ni as usize] += f * multipole[ki as usize] * t[ti as usize];
        }
    }

    /// M2L: convert a multipole about `z` into a local expansion about `w`.
    pub fn m2l(&self, local: &mut [f64], multipole: &[f64], z: Vec3, w: Vec3) {
        let t = self.derivative_tensor(w - z);
        self.m2l_with_tensor(local, multipole, &t);
    }

    /// L2L: translate a parent local expansion (center `wp`) into a child
    /// local expansion (center `wc`), accumulating.
    pub fn l2l(&self, child: &mut [f64], parent: &[f64], wp: Vec3, wc: Vec3) {
        let mono = self.monomials(wc - wp);
        for &(ni, mi, di, b) in &self.l2l_pairs {
            child[ni as usize] += parent[mi as usize] * mono[di as usize] * b;
        }
    }

    /// L2P: evaluate a local expansion about `w` at `y`; returns
    /// `(potential, field = -grad potential)`.
    pub fn l2p(&self, local: &[f64], w: Vec3, y: Vec3) -> (f64, Vec3) {
        let d = y - w;
        let p = self.order;
        let mut pw = [[0.0f64; 16]; 3];
        for (c, pwc) in pw.iter_mut().enumerate() {
            pwc[0] = 1.0;
            for e in 1..=p {
                pwc[e] = pwc[e - 1] * d[c];
            }
        }
        let mut phi = 0.0;
        let mut grad = Vec3::ZERO;
        for (i, m) in self.midx.iter().enumerate() {
            let l = local[i];
            let mono = pw[0][m[0] as usize] * pw[1][m[1] as usize] * pw[2][m[2] as usize];
            phi += l * mono;
            for c in 0..3usize {
                if m[c] >= 1 {
                    let mut mo = m[c] as f64;
                    mo *= pw[c][m[c] as usize - 1];
                    for o in 0..3usize {
                        if o != c {
                            mo *= pw[o][m[o] as usize];
                        }
                    }
                    grad[c] += l * mo;
                }
            }
        }
        (phi, -grad)
    }

    /// Evaluate the potential and field of a multipole about `z` directly at
    /// `y` (M2P; used for tests and far-away evaluation).
    pub fn m2p(&self, multipole: &[f64], z: Vec3, y: Vec3) -> (f64, Vec3) {
        // phi(y) = sum_k M_k (-1)^{|k|} T_k(y - z).
        // Build a tiny local expansion about y and evaluate at y: L_0 is the
        // potential; L_{e_d} the gradient components.
        let t = self.derivative_tensor(y - z);
        let mut phi = 0.0;
        let mut grad = Vec3::ZERO;
        let dim = 2 * self.order + 1;
        let look = |m: [usize; 3]| -> u32 { self.lookup2[(m[0] * dim + m[1]) * dim + m[2]] };
        for (ki, k) in self.midx.iter().enumerate() {
            let sign = if (k[0] + k[1] + k[2]) % 2 == 0 { 1.0 } else { -1.0 };
            phi += multipole[ki]
                * sign
                * t[look([k[0] as usize, k[1] as usize, k[2] as usize]) as usize];
            for c in 0..3usize {
                let mut kc = [k[0] as usize, k[1] as usize, k[2] as usize];
                kc[c] += 1;
                grad[c] += multipole[ki] * sign * t[look(kc) as usize];
            }
        }
        (phi, -grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(p: usize) -> ExpansionOps {
        ExpansionOps::new(p)
    }

    #[test]
    fn ncoeffs_formula() {
        assert_eq!(ncoeffs(0), 1);
        assert_eq!(ncoeffs(1), 4);
        assert_eq!(ncoeffs(2), 10);
        assert_eq!(ncoeffs(4), 35);
        for p in 0..=8 {
            assert_eq!(gen_midx(p).len(), ncoeffs(p));
        }
    }

    #[test]
    fn midx_graded_and_unique() {
        let m = gen_midx(5);
        let mut seen = std::collections::HashSet::new();
        let mut prev_total = 0;
        for x in &m {
            let total = x[0] + x[1] + x[2];
            assert!(total as usize <= 5);
            assert!(total >= prev_total, "graded ordering");
            prev_total = total;
            assert!(seen.insert(*x), "duplicate multi-index");
        }
    }

    #[test]
    fn derivative_tensor_matches_symbolic() {
        let o = ops(2);
        let r = Vec3::new(1.3, -0.7, 2.1);
        let t = o.derivative_tensor(r);
        let rn = r.norm();
        let get = |m: [u8; 3]| -> f64 {
            let ix = o.midx2.iter().position(|&x| x == m).unwrap();
            t[ix]
        };
        // T_0 = 1/r
        assert!((get([0, 0, 0]) - 1.0 / rn).abs() < 1e-12);
        // T_{e_x} = -x/r^3
        assert!((get([1, 0, 0]) - (-r.x() / rn.powi(3))).abs() < 1e-12);
        // T_{2e_x} = 3x^2/r^5 - 1/r^3
        assert!(
            (get([2, 0, 0]) - (3.0 * r.x() * r.x() / rn.powi(5) - 1.0 / rn.powi(3))).abs() < 1e-12
        );
        // T_{e_x + e_y} = 3xy/r^5
        assert!((get([1, 1, 0]) - 3.0 * r.x() * r.y() / rn.powi(5)).abs() < 1e-12);
        // Mixed third derivative via finite differences of T_{1,1,0}.
        let h = 1e-6;
        let o4 = ops(2);
        let tp = o4.derivative_tensor(r + Vec3::new(0.0, 0.0, h));
        let tm = o4.derivative_tensor(r - Vec3::new(0.0, 0.0, h));
        let ix110 = o4.midx2.iter().position(|&x| x == [1, 1, 0]).unwrap();
        let fd = (tp[ix110] - tm[ix110]) / (2.0 * h);
        let ix111 = o4.midx2.iter().position(|&x| x == [1, 1, 1]).unwrap();
        assert!((o4.derivative_tensor(r)[ix111] - fd).abs() < 1e-5);
    }

    #[test]
    fn p2m_then_m2p_approximates_potential() {
        let o = ops(6);
        let z = Vec3::new(0.5, 0.5, 0.5);
        // Sources clustered near z.
        let srcs = [
            (Vec3::new(0.4, 0.55, 0.45), 1.0),
            (Vec3::new(0.6, 0.5, 0.62), -2.0),
            (Vec3::new(0.52, 0.38, 0.5), 1.5),
        ];
        let mut m = vec![0.0; o.len()];
        for &(x, q) in &srcs {
            o.p2m(&mut m, z, x, q);
        }
        // Evaluate far away.
        let y = Vec3::new(3.0, -2.0, 4.0);
        let (phi, field) = o.m2p(&m, z, y);
        let mut want_phi = 0.0;
        let mut want_field = Vec3::ZERO;
        for &(x, q) in &srcs {
            let d = y - x;
            want_phi += q / d.norm();
            want_field += d * (q / d.norm().powi(3));
        }
        assert!((phi - want_phi).abs() < 1e-8 * want_phi.abs().max(1.0), "{phi} vs {want_phi}");
        assert!((field - want_field).norm() < 1e-7);
    }

    #[test]
    fn m2m_preserves_far_potential() {
        let o = ops(5);
        let zc = Vec3::new(0.25, 0.25, 0.25);
        let zp = Vec3::new(0.5, 0.5, 0.5);
        let mut mc = vec![0.0; o.len()];
        o.p2m(&mut mc, zc, Vec3::new(0.2, 0.3, 0.22), 2.0);
        o.p2m(&mut mc, zc, Vec3::new(0.31, 0.2, 0.28), -1.0);
        let mut mp = vec![0.0; o.len()];
        o.m2m(&mut mp, &mc, zc, zp);
        let y = Vec3::new(5.0, 4.0, -3.0);
        let (phi_c, _) = o.m2p(&mc, zc, y);
        let (phi_p, _) = o.m2p(&mp, zp, y);
        // Both truncated expansions approximate the same potential; they
        // agree up to the truncation error of the coarser (parent) center.
        assert!((phi_c - phi_p).abs() < 1e-6 * phi_c.abs().max(1e-12), "{phi_c} vs {phi_p}");
    }

    #[test]
    fn m2l_then_l2p_matches_direct() {
        let o = ops(8);
        let z = Vec3::new(0.0, 0.0, 0.0);
        let w = Vec3::new(4.0, 0.0, 0.0); // well separated
        let srcs = [(Vec3::new(0.2, -0.1, 0.3), 1.0), (Vec3::new(-0.3, 0.2, -0.1), -1.5)];
        let mut m = vec![0.0; o.len()];
        for &(x, q) in &srcs {
            o.p2m(&mut m, z, x, q);
        }
        let mut l = vec![0.0; o.len()];
        o.m2l(&mut l, &m, z, w);
        let y = w + Vec3::new(0.3, -0.2, 0.25);
        let (phi, field) = o.l2p(&l, w, y);
        let mut want_phi = 0.0;
        let mut want_field = Vec3::ZERO;
        for &(x, q) in &srcs {
            let d = y - x;
            want_phi += q / d.norm();
            want_field += d * (q / d.norm().powi(3));
        }
        assert!((phi - want_phi).abs() < 1e-6 * want_phi.abs().max(0.1), "{phi} vs {want_phi}");
        assert!((field - want_field).norm() < 1e-5, "{field:?} vs {want_field:?}");
    }

    #[test]
    fn l2l_preserves_evaluation() {
        let o = ops(5);
        let z = Vec3::ZERO;
        let wp = Vec3::new(4.0, 4.0, 4.0);
        let wc = Vec3::new(4.4, 3.8, 4.2);
        let mut m = vec![0.0; o.len()];
        o.p2m(&mut m, z, Vec3::new(0.1, 0.2, -0.1), 1.0);
        let mut lp = vec![0.0; o.len()];
        o.m2l(&mut lp, &m, z, wp);
        let mut lc = vec![0.0; o.len()];
        o.l2l(&mut lc, &lp, wp, wc);
        // Evaluate near the child center with both expansions: the child
        // expansion is the translated parent, so they agree exactly (same
        // truncation space for L2L).
        let y = wc + Vec3::new(0.05, -0.08, 0.02);
        let (phi_p, _) = o.l2p(&lp, wp, y);
        let (phi_c, _) = o.l2p(&lc, wc, y);
        assert!((phi_p - phi_c).abs() < 1e-9 * phi_p.abs().max(1e-12));
    }

    #[test]
    fn accuracy_improves_with_order() {
        let z = Vec3::ZERO;
        let w = Vec3::new(3.0, 1.0, 0.5);
        let src = (Vec3::new(0.3, -0.35, 0.25), 1.0);
        let y = w + Vec3::new(0.3, 0.3, -0.3);
        let exact = 1.0 / (y - src.0).norm();
        let mut errs = Vec::new();
        for p in [1usize, 3, 5, 7] {
            let o = ops(p);
            let mut m = vec![0.0; o.len()];
            o.p2m(&mut m, z, src.0, src.1);
            let mut l = vec![0.0; o.len()];
            o.m2l(&mut l, &m, z, w);
            let (phi, _) = o.l2p(&l, w, y);
            errs.push((phi - exact).abs() / exact.abs());
        }
        for win in errs.windows(2) {
            assert!(win[1] < win[0], "error must decrease with order: {errs:?}");
        }
        assert!(errs.last().unwrap() < &1e-4, "{errs:?}");
    }
}
