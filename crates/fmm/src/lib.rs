//! # fmm — a parallel Fast Multipole Method solver
//!
//! From-scratch FMM for the Laplace kernel with the *data handling* of the
//! paper's FMM solver (ScaFaCoS, Sect. II-B): the system box is recursively
//! subdivided, boxes are numbered by a Z-Morton ordering, and particles are
//! placed into boxes by **parallel sorting** — partition-based for unsorted
//! data, merge-based (Batcher merge-exchange, point-to-point only) for almost
//! sorted data. The resulting domain decomposition assigns each process a
//! segment of the Z-order space-filling curve.
//!
//! Differences from the original solver (documented in `DESIGN.md`): the
//! expansions are Cartesian Taylor rather than spherical harmonics (same
//! asymptotics, simpler operators), and fully periodic boxes are handled with
//! wrapped interaction lists (a cell-pair minimum-image approximation of the
//! periodic sum) rather than a renormalized lattice sum. Accuracy against
//! direct/Ewald references is pinned by this crate's tests.
//!
//! After the computation the solver either **restores** the original particle
//! order and distribution (Method A, paper Sect. III-A) or returns the
//! **changed** Z-order distribution together with resort indices (Method B,
//! Sect. III-B).

#![warn(missing_docs)]

pub mod expansion;
mod solver;
pub mod tree;

pub use expansion::{ncoeffs, ExpansionOps};
pub use solver::{FmmConfig, FmmParticle, FmmRunReport, FmmSolver};

#[cfg(test)]
mod tests {
    use super::*;
    use particles::reference::{direct_open, ewald, EwaldParams};
    use particles::{IonicCrystal, ParticleSource, RandomGas, RedistMethod, SystemBox, Vec3};
    use simcomm::{run, MachineModel};

    /// Gather a source system's particles, run the FMM on `p` ranks with a
    /// block distribution, and return the concatenated restored output.
    fn run_fmm_restore(
        src: &(impl ParticleSource + Sync),
        p: usize,
        cfg: FmmConfig,
        bbox: SystemBox,
    ) -> (Vec<f64>, Vec<Vec3>) {
        let n = src.n();
        let out = run(p, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            // Block distribution of ids.
            let lo = me * n / p;
            let hi = (me + 1) * n / p;
            let mut pos = Vec::new();
            let mut charge = Vec::new();
            let mut id = Vec::new();
            for i in lo..hi {
                let (x, q) = src.particle(i as u64);
                pos.push(x);
                charge.push(q);
                id.push(i as u64);
            }
            let mut solver = FmmSolver::new(bbox, cfg.clone());
            let o = solver.run(
                comm,
                &pos,
                &charge,
                &id,
                RedistMethod::RestoreOriginal,
                None,
                usize::MAX,
            );
            // Restored output must preserve the input order exactly.
            assert_eq!(o.pos, pos, "method A must restore positions in order");
            assert_eq!(o.charge, charge);
            assert_eq!(o.id, id);
            assert!(!o.resorted);
            (o.potential, o.field)
        });
        let mut potential = Vec::with_capacity(n);
        let mut field = Vec::with_capacity(n);
        for (pot, f) in out.results {
            potential.extend(pot);
            field.extend(f);
        }
        (potential, field)
    }

    #[test]
    fn open_boundary_matches_direct_sum() {
        let bbox = SystemBox::new(Vec3::ZERO, Vec3::splat(10.0), [false; 3]);
        let gas = RandomGas { n: 200, bbox, seed: 42 };
        let mut pos = Vec::new();
        let mut charge = Vec::new();
        for i in 0..200u64 {
            let (x, q) = gas.particle(i);
            pos.push(x);
            charge.push(q);
        }
        let want = direct_open(&pos, &charge);
        for p in [1usize, 4] {
            let cfg = FmmConfig { order: 6, level: 3, soft_core: None };
            let (pot, field) = run_fmm_restore(&gas, p, cfg, bbox);
            let energy: f64 = 0.5 * pot.iter().zip(&charge).map(|(a, q)| a * q).sum::<f64>();
            let rel = (energy - want.energy).abs() / want.energy.abs();
            assert!(rel < 1e-3, "p={p}: energy {energy} vs {w}, rel {rel}", w = want.energy);
            // Spot-check per-particle values against the direct sum.
            let scale: f64 = (want.potential.iter().map(|x| x * x).sum::<f64>() / 200.0).sqrt();
            for i in 0..200 {
                assert!(
                    (pot[i] - want.potential[i]).abs() < 2e-2 * scale,
                    "i={i}: {a} vs {b}",
                    a = pot[i],
                    b = want.potential[i]
                );
                assert!((field[i] - want.field[i]).norm() < 5e-2 * scale);
            }
        }
    }

    #[test]
    fn accuracy_improves_with_order_open() {
        let bbox = SystemBox::new(Vec3::ZERO, Vec3::splat(8.0), [false; 3]);
        let gas = RandomGas { n: 120, bbox, seed: 7 };
        let mut pos = Vec::new();
        let mut charge = Vec::new();
        for i in 0..120u64 {
            let (x, q) = gas.particle(i);
            pos.push(x);
            charge.push(q);
        }
        let want = direct_open(&pos, &charge);
        let mut errs = Vec::new();
        for order in [2usize, 4, 6] {
            let (pot, _) =
                run_fmm_restore(&gas, 2, FmmConfig { order, level: 2, soft_core: None }, bbox);
            let energy: f64 = 0.5 * pot.iter().zip(&charge).map(|(a, q)| a * q).sum::<f64>();
            errs.push((energy - want.energy).abs() / want.energy.abs());
        }
        assert!(errs[2] < errs[0], "error must decrease with order: {errs:?}");
        assert!(errs[2] < 1e-4, "{errs:?}");
    }

    #[test]
    fn periodic_crystal_close_to_ewald() {
        // Jittered ionic crystal; wrapped-list FMM approximates the periodic
        // sum. Tolerance is looser than the open case (documented cell-pair
        // minimum-image approximation).
        let c = IonicCrystal::cubic(8, 1.0, 0.15, 3);
        let bbox = c.system_box();
        let n = c.n();
        let mut pos = Vec::new();
        let mut charge = Vec::new();
        for i in 0..n as u64 {
            let (x, q) = c.particle(i);
            pos.push(x);
            charge.push(q);
        }
        let want = ewald(&pos, &charge, &bbox, EwaldParams::for_cubic_box(8.0));
        let (pot, _) =
            run_fmm_restore(&c, 4, FmmConfig { order: 6, level: 3, soft_core: None }, bbox);
        let energy: f64 = 0.5 * pot.iter().zip(&charge).map(|(a, q)| a * q).sum::<f64>();
        let rel = (energy - want.energy).abs() / want.energy.abs();
        assert!(rel < 2e-2, "energy {energy} vs ewald {w}, rel {rel}", w = want.energy);
    }

    #[test]
    fn method_b_returns_changed_order_with_valid_resort_indices() {
        let c = IonicCrystal::cubic(6, 1.0, 0.2, 9);
        let n = c.n();
        let p = 4;
        let out = run(p, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let lo = me * n / p;
            let hi = (me + 1) * n / p;
            let mut pos = Vec::new();
            let mut charge = Vec::new();
            let mut id = Vec::new();
            for i in lo..hi {
                let (x, q) = c.particle(i as u64);
                pos.push(x);
                charge.push(q);
                id.push(i as u64);
            }
            let mut solver =
                FmmSolver::new(c.system_box(), FmmConfig { order: 2, level: 2, soft_core: None });
            let o =
                solver.run(comm, &pos, &charge, &id, RedistMethod::UseChanged, None, usize::MAX);
            assert!(o.resorted);
            assert_eq!(o.resort_indices.len(), pos.len(), "one index per original particle");
            // Resort the original ids and compare against the changed ids.
            let moved_ids = atasp::resort(
                comm,
                &id,
                &o.resort_indices,
                o.id.len(),
                &atasp::ExchangeMode::Collective,
            );
            assert_eq!(moved_ids, o.id, "resort indices must map original to changed order");
            // The changed order must be globally Z-sorted.
            let keys: Vec<u64> =
                o.pos.iter().map(|&x| crate::tree::leaf_key(&c.system_box(), x, 2)).collect();
            assert!(psort::is_globally_sorted(comm, &keys));
            o.id.len()
        });
        let total: usize = out.results.iter().sum();
        assert_eq!(total, n, "no particles lost");
    }

    #[test]
    fn method_b_capacity_fallback_restores() {
        let c = IonicCrystal::cubic(4, 1.0, 0.1, 5);
        let n = c.n();
        let p = 2;
        let out = run(p, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let lo = me * n / p;
            let hi = (me + 1) * n / p;
            let mut pos = Vec::new();
            let mut charge = Vec::new();
            let mut id = Vec::new();
            for i in lo..hi {
                let (x, q) = c.particle(i as u64);
                pos.push(x);
                charge.push(q);
                id.push(i as u64);
            }
            let mut solver =
                FmmSolver::new(c.system_box(), FmmConfig { order: 2, level: 2, soft_core: None });
            // Zero capacity forces the fallback everywhere.
            let o = solver.run(comm, &pos, &charge, &id, RedistMethod::UseChanged, None, 0);
            (o.resorted, o.id == id, o.resort_indices.is_empty())
        });
        for (resorted, same, no_indices) in out.results {
            assert!(!resorted, "zero capacity must force the restore fallback");
            assert!(same, "fallback must restore the original order");
            assert!(no_indices);
        }
    }

    #[test]
    fn merge_sort_path_used_with_small_movement() {
        let c = IonicCrystal::cubic(6, 1.0, 0.1, 1);
        let n = c.n();
        let p = 4;
        let out = run(p, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let lo = me * n / p;
            let hi = (me + 1) * n / p;
            let mut pos = Vec::new();
            let mut charge = Vec::new();
            let mut id = Vec::new();
            for i in lo..hi {
                let (x, q) = c.particle(i as u64);
                pos.push(x);
                charge.push(q);
                id.push(i as u64);
            }
            let mut solver =
                FmmSolver::new(c.system_box(), FmmConfig { order: 2, level: 2, soft_core: None });
            // First run establishes the Z-distribution.
            let o1 =
                solver.run(comm, &pos, &charge, &id, RedistMethod::UseChanged, None, usize::MAX);
            assert!(!solver.last_report.used_merge_sort);
            // Second run with a tiny movement hint: merge path.
            let o2 = solver.run(
                comm,
                &o1.pos,
                &o1.charge,
                &o1.id,
                RedistMethod::UseChanged,
                Some(1e-6),
                usize::MAX,
            );
            let used_merge = solver.last_report.used_merge_sort;
            let sent = solver.last_report.sort_sent;
            // Energies must agree between the two runs (same particle set).
            let e1: f64 =
                0.5 * o1.potential.iter().zip(&o1.charge).map(|(a, q)| a * q).sum::<f64>();
            let e2: f64 =
                0.5 * o2.potential.iter().zip(&o2.charge).map(|(a, q)| a * q).sum::<f64>();
            (used_merge, sent, e1, e2)
        });
        let mut e1t = 0.0;
        let mut e2t = 0.0;
        for &(used_merge, sent, e1, e2) in &out.results {
            assert!(used_merge, "small movement must select the merge-based sort");
            assert_eq!(sent, 0, "already-sorted data must not move");
            e1t += e1;
            e2t += e2;
        }
        assert!((e1t - e2t).abs() < 1e-9 * e1t.abs().max(1e-12));
    }

    #[test]
    fn movement_guard_falls_back_to_partition_sort_on_lying_hint() {
        use simcomm::{run_faulted, FaultPlan};
        // Rank 0 holds particles spread over the whole box; the others hold a
        // few particles near the origin. The data is badly out of Z order, so
        // a *tiny* movement hint is a lie — the honest decision would have
        // been the partition sort. The guard (active only on fault-injected
        // worlds) must cap the degenerating merge cleanup, fall back to the
        // partition sort, and produce output identical to a run that chose
        // the partition sort up front.
        let p = 4;
        let bbox = particles::SystemBox::new(Vec3::ZERO, Vec3::splat(8.0), [false; 3]);
        let local = move |me: usize| -> (Vec<Vec3>, Vec<f64>, Vec<u64>) {
            if me == 0 {
                let n = 48u64;
                let pos: Vec<Vec3> = (0..n)
                    .map(|i| {
                        let s = |k: u64| {
                            (k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 11) as f64
                                / (1u64 << 53) as f64
                        };
                        Vec3::new(8.0 * s(i * 3 + 1), 8.0 * s(i * 3 + 2), 8.0 * s(i * 3 + 3))
                    })
                    .collect();
                let charge: Vec<f64> =
                    (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
                let id: Vec<u64> = (0..n).collect();
                (pos, charge, id)
            } else {
                let pos: Vec<Vec3> =
                    (0..2).map(|i| Vec3::splat(0.1 + 0.05 * (me * 2 + i) as f64)).collect();
                let charge = vec![1.0, -1.0];
                let id = vec![100 + me as u64 * 2, 101 + me as u64 * 2];
                (pos, charge, id)
            }
        };
        let cfg = || FmmConfig { order: 2, level: 2, soft_core: None };
        // Reference: the same data sorted by the general partition sort
        // (no movement hint) on a clean world.
        let reference = run(p, MachineModel::ideal(), move |comm| {
            let (pos, charge, id) = local(comm.rank());
            let mut solver = FmmSolver::new(bbox, cfg());
            let o =
                solver.run(comm, &pos, &charge, &id, RedistMethod::UseChanged, None, usize::MAX);
            assert!(!solver.last_report.used_merge_sort);
            (o.id, o.potential)
        })
        .results;
        // A fault-active plan with no comm-level injections: the guard
        // engages, nothing else changes.
        let plan =
            FaultPlan { seed: 7, hint_lie_prob: 1.0, hint_lie_factor: 1e-3, ..FaultPlan::none() };
        let guarded = run_faulted(p, MachineModel::ideal(), plan, move |comm| {
            let (pos, charge, id) = local(comm.rank());
            let mut solver = FmmSolver::new(bbox, cfg());
            solver.set_guard_cleanup_cap(Some(0));
            let o = solver.run(
                comm,
                &pos,
                &charge,
                &id,
                RedistMethod::UseChanged,
                Some(1e-9), // the lie: real displacement is the whole box
                usize::MAX,
            );
            assert!(solver.last_report.used_merge_sort, "the lying hint selects the merge path");
            assert!(
                solver.last_report.movement_guard_fallback,
                "the guard must detect the violated bound and fall back"
            );
            assert_eq!(solver.guard_fallbacks, 1);
            (o.id, o.potential)
        })
        .results;
        assert_eq!(guarded, reference, "fallback output must match the up-front partition sort");
        // On a clean world the guard stays disengaged: the same lying hint
        // runs the merge path to completion (slowly, but correctly).
        let clean = run(p, MachineModel::ideal(), move |comm| {
            let (pos, charge, id) = local(comm.rank());
            let mut solver = FmmSolver::new(bbox, cfg());
            solver.set_guard_cleanup_cap(Some(0));
            let o = solver.run(
                comm,
                &pos,
                &charge,
                &id,
                RedistMethod::UseChanged,
                Some(1e-9),
                usize::MAX,
            );
            assert!(!solver.last_report.movement_guard_fallback);
            assert_eq!(solver.guard_fallbacks, 0);
            (o.id, o.potential)
        })
        .results;
        // Same particle set, so the total energy agrees regardless of path.
        let energy = |rows: &Vec<(Vec<u64>, Vec<f64>)>| -> f64 {
            rows.iter().flat_map(|(_, pot)| pot.iter()).sum()
        };
        assert!(
            (energy(&clean) - energy(&reference)).abs() < 1e-9 * energy(&reference).abs().max(1.0)
        );
    }

    #[test]
    fn tuned_config_matches_accuracy_tiers() {
        let c = FmmConfig::tuned(829_440, 1e-3);
        assert_eq!(c.order, 4);
        assert!(c.level >= 4);
        assert_eq!(FmmConfig::tuned(1000, 1e-2).order, 2);
        assert_eq!(FmmConfig::tuned(1000, 1e-5).order, 8);
        assert!(FmmConfig::tuned(1, 1e-2).level >= 1);
    }

    #[test]
    fn empty_ranks_are_tolerated() {
        let bbox = SystemBox::new(Vec3::ZERO, Vec3::splat(4.0), [false; 3]);
        let out = run(3, MachineModel::ideal(), |comm| {
            // Only rank 0 has particles.
            let (pos, charge, id) = if comm.rank() == 0 {
                (
                    vec![Vec3::new(1.0, 1.0, 1.0), Vec3::new(3.0, 3.0, 3.0)],
                    vec![1.0, -1.0],
                    vec![0u64, 1],
                )
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
            let mut solver =
                FmmSolver::new(bbox, FmmConfig { order: 8, level: 2, soft_core: None });
            let o = solver.run(
                comm,
                &pos,
                &charge,
                &id,
                RedistMethod::RestoreOriginal,
                None,
                usize::MAX,
            );
            o.potential
        });
        // The two charges at distance sqrt(12) interact through a single M2L
        // at the leaf level (offset (2,2,2)); order 8 keeps the truncation
        // error of that marginally-separated pair below 1e-4.
        let r = (12.0f64).sqrt();
        let pot0 = &out.results[0];
        assert_eq!(pot0.len(), 2);
        assert!((pot0[0] - (-1.0 / r)).abs() < 1e-4, "{pot0:?}");
        assert!((pot0[1] - (1.0 / r)).abs() < 1e-4);
    }
}
