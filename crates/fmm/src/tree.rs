//! Octree cells over Z-Morton keys: key/center geometry, grouping of sorted
//! particles into leaf cells, and the standard FMM interaction lists (with
//! optional periodic wraparound).

use particles::zorder;
use particles::{SystemBox, Vec3};

/// Z-Morton leaf key of a position on a `2^level` grid over the box.
#[inline]
pub fn leaf_key(bbox: &SystemBox, pos: Vec3, level: u32) -> u64 {
    let t = bbox.normalized(pos);
    zorder::key_of_normalized([t.x(), t.y(), t.z()], level)
}

/// Geometric center of the cell with Morton `key` at `level`.
pub fn cell_center(bbox: &SystemBox, key: u64, level: u32) -> Vec3 {
    let (x, y, z) = zorder::decode(key);
    let cells = (1u64 << level) as f64;
    Vec3::new(
        bbox.offset.x() + (x as f64 + 0.5) * bbox.lengths.x() / cells,
        bbox.offset.y() + (y as f64 + 0.5) * bbox.lengths.y() / cells,
        bbox.offset.z() + (z as f64 + 0.5) * bbox.lengths.z() / cells,
    )
}

/// Group a sorted key array into `(key, start..end)` cell runs.
pub fn cells_from_sorted(keys: &[u64]) -> Vec<(u64, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < keys.len() {
        let k = keys[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == k {
            j += 1;
        }
        debug_assert!(j == keys.len() || keys[j] > k, "keys must be sorted");
        out.push((k, i..j));
        i = j;
    }
    out
}

/// Signed relative cell offset between two cells at the same level, using the
/// shortest (wrapped) displacement when `periodic`.
pub fn cell_offset(a: u64, b: u64, level: u32, periodic: bool) -> [i64; 3] {
    let n = 1i64 << level;
    let (ax, ay, az) = zorder::decode(a);
    let (bx, by, bz) = zorder::decode(b);
    let wrap = |d: i64| -> i64 {
        if !periodic {
            return d;
        }
        let mut d = d % n;
        if d > n / 2 {
            d -= n;
        } else if d < -(n / 2) {
            d += n;
        }
        d
    };
    [wrap(bx as i64 - ax as i64), wrap(by as i64 - ay as i64), wrap(bz as i64 - az as i64)]
}

/// Neighbour keys (Chebyshev distance 1) of `key` at `level`. With
/// `periodic`, wraps around; otherwise out-of-domain neighbours are skipped.
/// Excludes `key` itself; deduplicated (relevant for tiny periodic grids).
pub fn neighbor_keys(key: u64, level: u32, periodic: bool) -> Vec<u64> {
    if periodic {
        return zorder::neighbor_keys_periodic(key, level);
    }
    let n = 1i64 << level;
    let (x, y, z) = zorder::decode(key);
    let mut out = Vec::with_capacity(26);
    for dx in -1..=1i64 {
        for dy in -1..=1i64 {
            for dz in -1..=1i64 {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                let nz = z as i64 + dz;
                if nx < 0 || ny < 0 || nz < 0 || nx >= n || ny >= n || nz >= n {
                    continue;
                }
                out.push(zorder::encode(nx as u32, ny as u32, nz as u32));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The M2L interaction list of a target cell: children of the (wrapped)
/// neighbours of the target's parent that are not themselves (wrapped)
/// neighbours of the target (and not the target). At levels too coarse for
/// well-separation (fewer than 4 cells per dimension with wraparound) the
/// list is empty and everything is deferred to finer levels.
pub fn interaction_list(key: u64, level: u32, periodic: bool) -> Vec<u64> {
    if level == 0 {
        return Vec::new();
    }
    if periodic && level < 2 {
        // With wraparound and < 4 cells per dimension, every cell is adjacent
        // to every other; nothing is well separated.
        return Vec::new();
    }
    let parent = zorder::parent(key);
    let mut candidates: Vec<u64> = Vec::with_capacity(216);
    for pn in neighbor_keys(parent, level - 1, periodic) {
        for c in 0..8u8 {
            candidates.push(zorder::child(pn, c));
        }
    }
    // Own parent's other children are adjacent or the target itself at this
    // level only if within distance 1; include them as candidates too.
    for c in 0..8u8 {
        candidates.push(zorder::child(parent, c));
    }
    candidates.sort_unstable();
    candidates.dedup();
    let excluded: std::collections::HashSet<u64> =
        neighbor_keys(key, level, periodic).into_iter().collect();
    candidates
        .into_iter()
        .filter(|&c| c != key && !excluded.contains(&c))
        .filter(|&c| {
            // With periodic wrap on small grids, a candidate may alias to an
            // adjacent cell; the exclusion set already handles that. For the
            // open case, out-of-domain children cannot arise because parents
            // are in-domain and children of in-domain parents are in-domain.
            let off = cell_offset(key, c, level, periodic);
            off.iter().any(|&d| d.abs() >= 2)
        })
        .collect()
}

/// Effective source-cell center for an M2L translation from source cell `src`
/// to target cell `tgt` at `level`: the source center shifted to its nearest
/// periodic image relative to the target (identity for open boundaries).
pub fn effective_source_center(
    bbox: &SystemBox,
    tgt: u64,
    src: u64,
    level: u32,
    periodic: bool,
) -> Vec3 {
    let tc = cell_center(bbox, tgt, level);
    if !periodic {
        return cell_center(bbox, src, level);
    }
    let off = cell_offset(tgt, src, level, true);
    let cells = (1u64 << level) as f64;
    tc + Vec3::new(
        off[0] as f64 * bbox.lengths.x() / cells,
        off[1] as f64 * bbox.lengths.y() / cells,
        off[2] as f64 * bbox.lengths.z() / cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn bbox() -> SystemBox {
        SystemBox::cubic(8.0)
    }

    #[test]
    fn leaf_key_and_center_roundtrip() {
        let b = bbox();
        let level = 3; // 8x8x8 cells of width 1
        for &(x, y, z) in &[(0.5, 0.5, 0.5), (7.3, 0.1, 4.9), (3.99, 4.01, 6.5)] {
            let p = Vec3::new(x, y, z);
            let k = leaf_key(&b, p, level);
            let c = cell_center(&b, k, level);
            // The position must be inside the cell of its key.
            assert!((p - c).max_abs() <= 0.5 + 1e-12, "{p:?} vs center {c:?}");
        }
    }

    #[test]
    fn cells_from_sorted_groups_runs() {
        let keys = [1u64, 1, 1, 4, 7, 7];
        let cells = cells_from_sorted(&keys);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0], (1, 0..3));
        assert_eq!(cells[1], (4, 3..4));
        assert_eq!(cells[2], (7, 4..6));
        assert!(cells_from_sorted(&[]).is_empty());
    }

    #[test]
    fn neighbor_keys_open_at_corner() {
        let level = 3;
        let corner = particles::zorder::encode(0, 0, 0);
        assert_eq!(neighbor_keys(corner, level, false).len(), 7);
        assert_eq!(neighbor_keys(corner, level, true).len(), 26);
        let middle = particles::zorder::encode(4, 4, 4);
        assert_eq!(neighbor_keys(middle, level, false).len(), 26);
    }

    #[test]
    fn interaction_list_well_separated() {
        let level = 3;
        for &periodic in &[false, true] {
            let t = particles::zorder::encode(3, 4, 2);
            let list = interaction_list(t, level, periodic);
            assert!(!list.is_empty());
            for &s in &list {
                let off = cell_offset(t, s, level, periodic);
                assert!(off.iter().any(|&d| d.abs() >= 2), "not separated: {off:?}");
                assert!(off.iter().all(|&d| d.abs() <= 3), "too far: {off:?}");
            }
        }
    }

    #[test]
    fn interaction_list_empty_at_coarse_periodic_levels() {
        assert!(interaction_list(0, 0, true).is_empty());
        assert!(interaction_list(3, 1, true).is_empty());
        // Open boundaries at level 1: 2x2x2 cells, all adjacent -> empty too.
        assert!(interaction_list(3, 1, false).is_empty());
    }

    /// The fundamental FMM coverage invariant: for any target leaf, every
    /// source leaf is accounted for exactly once — either as an adjacent
    /// (near-field) cell, or in the interaction list of exactly one ancestor
    /// level, with ancestors' adjacency deferring coverage downward.
    fn check_coverage(levels: u32, periodic: bool) {
        let n = 1u32 << levels;
        let all_leaves: Vec<u64> = (0..n)
            .flat_map(|x| {
                (0..n).flat_map(move |y| (0..n).map(move |z| particles::zorder::encode(x, y, z)))
            })
            .collect();
        for &t in &all_leaves {
            let mut covered: HashSet<u64> = HashSet::new();
            // Near field: t itself and adjacent leaves.
            covered.insert(t);
            for nk in neighbor_keys(t, levels, periodic) {
                assert!(covered.insert(nk), "duplicate near neighbour");
            }
            // Far field: interaction lists of t and its ancestors; a source
            // cell at level l covers all its leaf descendants.
            let mut anc = t;
            for l in (1..=levels).rev() {
                for s in interaction_list(anc, l, periodic) {
                    // All leaf descendants of s.
                    let shift = 3 * (levels - l);
                    for leaf_suffix in 0..(1u64 << shift) {
                        let leaf = (s << shift) | leaf_suffix;
                        assert!(
                            covered.insert(leaf),
                            "leaf {leaf:#x} covered twice (target {t:#x}, level {l})"
                        );
                    }
                }
                anc = particles::zorder::parent(anc);
            }
            assert_eq!(
                covered.len(),
                all_leaves.len(),
                "target {t:#x}: covered {} of {} leaves",
                covered.len(),
                all_leaves.len()
            );
        }
    }

    #[test]
    fn coverage_exact_open_boundaries() {
        check_coverage(2, false);
        check_coverage(3, false);
    }

    #[test]
    fn coverage_exact_periodic() {
        check_coverage(2, true);
        check_coverage(3, true);
    }

    #[test]
    fn effective_source_center_wraps() {
        let b = bbox();
        let level = 3;
        let t = particles::zorder::encode(0, 0, 0);
        let s = particles::zorder::encode(7, 0, 0); // wrapped: offset -1... excluded from lists, but geometry must wrap
        let c = effective_source_center(&b, t, s, level, true);
        // Nearest image of cell (7,0,0) relative to (0,0,0) is at x = -0.5.
        assert!((c.x() - -0.5).abs() < 1e-12, "{c:?}");
        // Open: the plain center.
        let c_open = effective_source_center(&b, t, s, level, false);
        assert!((c_open.x() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn cell_offset_wraps_shortest_way() {
        let level = 3; // 8 cells per dim
        let a = particles::zorder::encode(1, 1, 1);
        let b = particles::zorder::encode(7, 1, 1);
        assert_eq!(cell_offset(a, b, level, true), [-2, 0, 0]);
        assert_eq!(cell_offset(a, b, level, false), [6, 0, 0]);
    }
}
