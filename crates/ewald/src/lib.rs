//! # ewald — a parallel classical Ewald summation solver
//!
//! The third solver behind the coupling interface (ScaFaCoS likewise ships an
//! `ewald` solver next to `fmm` and `p2nfft`): classical Ewald summation,
//! exact for fully periodic neutral systems, with `O(n^(3/2))`-ish cost. It
//! is the *reference* solver — slow but trustworthy — and doubles as a test
//! oracle for the two fast solvers at small sizes.
//!
//! Parallelization:
//!
//! * **Real space**: a systolic ring pass. Each rank's particles visit every
//!   other rank in `P-1` point-to-point steps; erfc-screened pair
//!   contributions within the cutoff are accumulated with the minimum-image
//!   convention.
//! * **Reciprocal space**: every rank computes the structure-factor
//!   contribution of its local particles for all k-vectors; one `allreduce`
//!   combines them; each rank then evaluates potentials and fields for its
//!   local particles.
//!
//! Unlike the FMM and the particle-mesh solver, Ewald summation works on
//! *any* particle distribution and never reorders or redistributes the
//! particles. Under Method B it therefore returns the unchanged order with
//! identity resort indices — a degenerate but valid case of the paper's
//! interface (the `resorted()` query reports `true`, and resorting
//! additional data is a no-op permutation).

#![warn(missing_docs)]

use atasp::encode_index;
use particles::math::{erfc, M_2_SQRTPI};
use particles::{MovementHint, RedistMethod, SolverOutput, SolverTimings, SystemBox, Vec3};
use simcomm::{Comm, Work};

/// Static configuration of the Ewald solver.
#[derive(Clone, Debug, PartialEq)]
pub struct EwaldConfig {
    /// Splitting parameter (1/length).
    pub alpha: f64,
    /// Real-space cutoff (must satisfy the minimum-image bound).
    pub rcut: f64,
    /// Reciprocal-space cutoff: integer k-vectors with `|m|_inf <= kmax`.
    pub kmax: i32,
    /// Optional short-range repulsive core (see [`particles::SoftCore`]).
    pub soft_core: Option<particles::SoftCore>,
}

impl EwaldConfig {
    /// Parameters for a target relative accuracy in a given box, balancing
    /// real- and reciprocal-space truncation like the serial reference.
    pub fn tuned(bbox: &SystemBox, accuracy: f64) -> Self {
        let l = bbox.lengths;
        let lmin = l.x().min(l.y()).min(l.z());
        let rcut = 0.45 * lmin;
        let factor = (-accuracy.ln()).sqrt().max(1.5);
        let alpha = factor / rcut;
        let lmax = l.x().max(l.y()).max(l.z());
        let kmax = ((alpha * lmax * factor) / std::f64::consts::PI).ceil() as i32;
        EwaldConfig { alpha, rcut, kmax, soft_core: None }
    }
}

/// A particle in the real-space ring pass.
#[derive(Clone, Copy, Debug)]
struct RingParticle {
    pos: Vec3,
    charge: f64,
}

/// Report of one Ewald execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EwaldRunReport {
    /// Real-space pair interactions evaluated.
    pub near_pairs: u64,
    /// k-vectors summed.
    pub kvectors: u64,
}

/// The parallel Ewald summation solver.
pub struct EwaldSolver {
    cfg: EwaldConfig,
    bbox: SystemBox,
    /// Report of the most recent run.
    pub last_report: EwaldRunReport,
}

const TAG_RING: u64 = 0x6577_616c64;

impl EwaldSolver {
    /// Create a solver for a fully periodic box.
    pub fn new(bbox: SystemBox, cfg: EwaldConfig) -> Self {
        assert!(bbox.fully_periodic(), "Ewald summation needs a fully periodic box");
        let lmin = bbox.lengths.x().min(bbox.lengths.y()).min(bbox.lengths.z());
        assert!(cfg.rcut <= 0.5 * lmin + 1e-12, "rcut violates the minimum-image bound");
        EwaldSolver { cfg, bbox, last_report: EwaldRunReport::default() }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &EwaldConfig {
        &self.cfg
    }

    /// Execute the solver. The particle order and distribution is never
    /// changed; under [`RedistMethod::UseChanged`] the resort indices are the
    /// identity permutation of the input.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        id: &[u64],
        method: RedistMethod,
        _movement: MovementHint,
        _max_local: usize,
    ) -> SolverOutput {
        let n = pos.len();
        assert_eq!(charge.len(), n);
        assert_eq!(id.len(), n);
        let me = comm.rank();
        let p = comm.size();
        self.last_report = EwaldRunReport::default();
        let t_start = comm.clock();
        // No sorting/redistribution is needed: timings.sort stays 0.
        let t_sorted = comm.clock();

        let mut potential = vec![0.0; n];
        let mut field = vec![Vec3::ZERO; n];

        // ---- Real space: systolic ring pass ----
        comm.enter_phase("near");
        let alpha = self.cfg.alpha;
        let rcut2 = self.cfg.rcut * self.cfg.rcut;
        let mut pairs = 0u64;
        let kernel =
            |pi: Vec3, pj: Vec3, qj: f64, qi: f64, out_pot: &mut f64, out_field: &mut Vec3| {
                let d = self.bbox.min_image(pi, pj);
                let r2 = d.norm2();
                if r2 == 0.0 || r2 > rcut2 {
                    return false;
                }
                let r = r2.sqrt();
                let e = erfc(alpha * r) / r;
                let de = e / r2 + alpha * M_2_SQRTPI * (-alpha * alpha * r2).exp() / r2;
                *out_pot += qj * e;
                *out_field += d * (qj * de);
                if let Some(core) = &self.cfg.soft_core {
                    let u = core.energy(r);
                    let fmag = core.force(r);
                    *out_pot += u / qi;
                    *out_field += d * (fmag / (r * qi));
                }
                true
            };

        // Local pairs.
        for i in 0..n {
            for j in 0..n {
                if i != j
                    && kernel(
                        pos[i],
                        pos[j],
                        charge[j],
                        charge[i],
                        &mut potential[i],
                        &mut field[i],
                    )
                {
                    pairs += 1;
                }
            }
        }
        // Ring: receive the travelling block from the left, interact, pass on.
        if p > 1 {
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let mut travelling: Vec<RingParticle> =
                pos.iter().zip(charge).map(|(&x, &q)| RingParticle { pos: x, charge: q }).collect();
            for _hop in 0..p - 1 {
                travelling = comm.sendrecv(right, travelling, left, TAG_RING);
                for i in 0..n {
                    for t in &travelling {
                        if kernel(
                            pos[i],
                            t.pos,
                            t.charge,
                            charge[i],
                            &mut potential[i],
                            &mut field[i],
                        ) {
                            pairs += 1;
                        }
                    }
                }
            }
        }
        comm.compute(Work::Interaction, pairs as f64);
        self.last_report.near_pairs = pairs;
        comm.exit_phase();

        // ---- Reciprocal space: local structure factors + allreduce ----
        comm.enter_phase("far");
        let l = self.bbox.lengths;
        let volume = self.bbox.volume();
        let two_pi = 2.0 * std::f64::consts::PI;
        let kmax = self.cfg.kmax;
        // Enumerate k-vectors once (the zero vector is excluded). Use only
        // half space and double contributions (S(-k) = conj(S(k))).
        let mut kvecs: Vec<Vec3> = Vec::new();
        for mx in 0..=kmax {
            let ylo = if mx == 0 { 0 } else { -kmax };
            for my in ylo..=kmax {
                let zlo = if mx == 0 && my == 0 { 1 } else { -kmax };
                for mz in zlo..=kmax {
                    kvecs.push(Vec3::new(
                        two_pi * mx as f64 / l.x(),
                        two_pi * my as f64 / l.y(),
                        two_pi * mz as f64 / l.z(),
                    ));
                }
            }
        }
        self.last_report.kvectors = kvecs.len() as u64;
        // Local structure factors, interleaved (re, im) pairs.
        let mut local_s: Vec<f64> = vec![0.0; kvecs.len() * 2];
        for (j, &x) in pos.iter().enumerate() {
            let q = charge[j];
            for (ki, k) in kvecs.iter().enumerate() {
                let phase = k.dot(&x);
                let (s, c) = phase.sin_cos();
                local_s[2 * ki] += q * c;
                local_s[2 * ki + 1] += q * s;
            }
        }
        comm.compute(Work::MeshPoint, (n * kvecs.len()) as f64);
        let global_s = comm
            .allreduce(local_s, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect::<Vec<f64>>());
        for (ki, k) in kvecs.iter().enumerate() {
            let k2 = k.norm2();
            let ak = 2.0 * 4.0 * std::f64::consts::PI / volume
                * (-k2 / (4.0 * alpha * alpha)).exp()
                / k2; // factor 2: half-space enumeration
            let s_re = global_s[2 * ki];
            let s_im = global_s[2 * ki + 1];
            for i in 0..n {
                let phase = k.dot(&pos[i]);
                let (sin_p, cos_p) = phase.sin_cos();
                potential[i] += ak * (s_re * cos_p + s_im * sin_p);
                let im = s_im * cos_p - s_re * sin_p;
                field[i] -= *k * (ak * im);
            }
        }
        comm.compute(Work::MeshPoint, (n * kvecs.len()) as f64);
        comm.exit_phase();

        // ---- Self-energy ----
        let self_term = 2.0 * alpha / std::f64::consts::PI.sqrt();
        for (pi, &q) in charge.iter().enumerate() {
            potential[pi] -= self_term * q;
        }
        comm.compute(Work::ParticleOp, n as f64);
        let t_computed = comm.clock();

        // ---- Output: the order never changed ----
        let resorted = method == RedistMethod::UseChanged;
        let resort_indices: Vec<u64> =
            if resorted { (0..n).map(|i| encode_index(me, i)).collect() } else { Vec::new() };
        SolverOutput {
            pos: pos.to_vec(),
            charge: charge.to_vec(),
            id: id.to_vec(),
            potential,
            field,
            resorted,
            resort_indices,
            timings: SolverTimings {
                sort: t_sorted - t_start,
                compute: t_computed - t_sorted,
                restore: 0.0,
                resort_create: comm.clock() - t_computed,
                total: comm.clock() - t_start,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use particles::reference::{ewald as serial_ewald, madelung_energy_per_ion, EwaldParams};
    use particles::{local_set, InitialDistribution, IonicCrystal};
    use simcomm::{run, MachineModel};

    fn gather_system(c: &IonicCrystal) -> (Vec<Vec3>, Vec<f64>) {
        let n = c.n();
        let mut pos = Vec::with_capacity(n);
        let mut charge = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let (x, q) = c.particle(i);
            pos.push(x);
            charge.push(q);
        }
        (pos, charge)
    }

    #[test]
    fn matches_serial_reference() {
        let c = IonicCrystal::cubic(4, 1.0, 0.2, 17);
        let bbox = c.system_box();
        let (pos, charge) = gather_system(&c);
        let params = EwaldParams::for_cubic_box(bbox.lengths.x());
        let want = serial_ewald(&pos, &charge, &bbox, params);
        let cfg = EwaldConfig {
            alpha: params.alpha,
            rcut: params.rcut,
            kmax: params.kmax,
            soft_core: None,
        };
        for p in [1usize, 4] {
            let c = c.clone();
            let cfg = cfg.clone();
            let out = run(p, MachineModel::ideal(), move |comm| {
                let set = local_set(&c, InitialDistribution::Random, comm.rank(), p, [1, 1, p]);
                let mut solver = EwaldSolver::new(bbox, cfg.clone());
                let o = solver.run(
                    comm,
                    set.pos(),
                    set.charge(),
                    set.id(),
                    RedistMethod::RestoreOriginal,
                    None,
                    usize::MAX,
                );
                (set.id().to_vec(), o.potential, o.field)
            });
            for (ids, pot, field) in &out.results {
                for ((id, ph), f) in ids.iter().zip(pot).zip(field) {
                    let w = want.potential[*id as usize];
                    assert!((ph - w).abs() < 1e-9 * w.abs().max(1.0), "p={p} id={id}: {ph} vs {w}");
                    let wf = want.field[*id as usize];
                    assert!((*f - wf).norm() < 1e-9, "field id={id}");
                }
            }
        }
    }

    #[test]
    fn reproduces_madelung() {
        let c = IonicCrystal::cubic(4, 1.0, 0.0, 0);
        let bbox = c.system_box();
        let cfg = EwaldConfig::tuned(&bbox, 1e-5);
        let out = run(2, MachineModel::ideal(), move |comm| {
            let set = local_set(&c, InitialDistribution::Random, comm.rank(), 2, [1, 1, 2]);
            let mut solver = EwaldSolver::new(bbox, cfg.clone());
            let o = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                RedistMethod::RestoreOriginal,
                None,
                usize::MAX,
            );
            0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>()
        });
        let energy: f64 = out.results.iter().sum();
        let want = madelung_energy_per_ion(1.0) * 64.0;
        assert!((energy - want).abs() / want.abs() < 1e-4, "energy {energy} vs {want}");
    }

    #[test]
    fn method_b_returns_identity_resort_indices() {
        let c = IonicCrystal::cubic(4, 1.0, 0.1, 2);
        let bbox = c.system_box();
        let cfg = EwaldConfig::tuned(&bbox, 1e-3);
        run(3, MachineModel::ideal(), move |comm| {
            let set = local_set(&c, InitialDistribution::Random, comm.rank(), 3, [1, 1, 3]);
            let mut solver = EwaldSolver::new(bbox, cfg.clone());
            let o = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                RedistMethod::UseChanged,
                None,
                usize::MAX,
            );
            assert!(o.resorted);
            assert_eq!(o.id, set.id(), "order unchanged");
            for (i, &ix) in o.resort_indices.iter().enumerate() {
                assert_eq!(atasp::decode_index(ix), (comm.rank(), i), "identity index");
            }
            // Resorting through the indices must be a no-op.
            let data: Vec<f64> = set.id().iter().map(|&x| x as f64).collect();
            let moved = atasp::resort(
                comm,
                &data,
                &o.resort_indices,
                data.len(),
                &atasp::ExchangeMode::Collective,
            );
            assert_eq!(moved, data);
        });
    }

    #[test]
    fn energy_independent_of_distribution_and_world_size() {
        let c = IonicCrystal::cubic(4, 1.3, 0.25, 9);
        let bbox = c.system_box();
        let cfg = EwaldConfig::tuned(&bbox, 1e-4);
        let mut energies = Vec::new();
        for p in [1usize, 2, 5] {
            let c = c.clone();
            let cfg = cfg.clone();
            let out = run(p, MachineModel::ideal(), move |comm| {
                let set = local_set(&c, InitialDistribution::Random, comm.rank(), p, [1, 1, p]);
                let mut solver = EwaldSolver::new(bbox, cfg.clone());
                let o = solver.run(
                    comm,
                    set.pos(),
                    set.charge(),
                    set.id(),
                    RedistMethod::RestoreOriginal,
                    None,
                    usize::MAX,
                );
                0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>()
            });
            energies.push(out.results.iter().sum::<f64>());
        }
        for e in &energies[1..] {
            assert!((e - energies[0]).abs() < 1e-9 * energies[0].abs());
        }
    }

    #[test]
    fn tuned_accuracy_tiers() {
        let bbox = SystemBox::cubic(10.0);
        let loose = EwaldConfig::tuned(&bbox, 1e-3);
        let tight = EwaldConfig::tuned(&bbox, 1e-6);
        assert!(tight.kmax >= loose.kmax);
        assert!(tight.alpha >= loose.alpha);
        assert!(loose.rcut <= 5.0);
    }
}
