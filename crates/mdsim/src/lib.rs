//! # mdsim — the particle dynamics simulation application
//!
//! The example application of the paper (Sect. II-D): a second-order leapfrog
//! integration of the equations of motion,
//!
//! ```text
//! x_{i+1} = x_i + v_i dt + a_i dt^2 / 2        (Eq. 1)
//! v_{i+1} = v_i + (a_i + a_{i+1}) dt / 2       (Eq. 2)
//! ```
//!
//! coupled to a long-range solver through the `fcs` library interface. The
//! simulation driver follows the paper's Fig. 3 pseudocode: tune, compute the
//! initial interactions, then `T` time steps of position update → `fcs_run`
//! → acceleration update → velocity update. Including the initial
//! interactions the solver executes `T + 1` times.
//!
//! The application carries **additional per-particle data** the solver does
//! not handle — velocities, accelerations, and (for diagnostics) each
//! particle's initial position. Under Method B this data is redistributed
//! after every solver execution with `fcs_resort_vec3`, exactly as the paper
//! describes for the integration method (Sect. III-B). The driver records a
//! per-step timing breakdown (sort / restore / resort / total) matching the
//! quantities plotted in the paper's Figs. 6–9.

#![warn(missing_docs)]

pub mod io;

use fcs::{Fcs, SolverKind};
use particles::{ParticleSet, SystemBox, Vec3};
use simcomm::Comm;

/// Configuration of one particle dynamics simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Which long-range solver to couple.
    pub solver: SolverKind,
    /// Method B (use the changed particle order and distribution) if true,
    /// Method A (restore the original order and distribution) otherwise.
    pub resort: bool,
    /// Feed the measured maximum particle movement to the solver so it can
    /// switch to merge-based sorting / neighbourhood communication.
    pub exploit_movement: bool,
    /// Integration time step (the paper uses 0.01).
    pub dt: f64,
    /// Number of time steps `T` (the solver runs `T + 1` times).
    pub steps: usize,
    /// Target relative accuracy of the solver.
    pub tolerance: f64,
    /// Particle mass (unit charge-to-mass ratio scales the dynamics).
    pub mass: f64,
    /// Local array capacity as a multiple of the mean particles per process.
    pub capacity_factor: f64,
    /// Couple a short-range repulsive core (sized from the mean
    /// inter-particle spacing) with the long-range solver. Without it, a pure
    /// Coulomb system of opposite charges eventually collapses; the paper's
    /// silica system likewise combines the Coulomb solver with "additional
    /// short range interactions".
    pub soft_core: bool,
    /// Initial thermal velocities, expressed as the typical per-step particle
    /// movement as a fraction of the mean inter-particle spacing. The paper's
    /// benchmark system is a *melting* crystal whose ions drift slowly; our
    /// synthetic stand-in starts from lattice positions, so a small initial
    /// temperature reproduces that drift (~0.4 % of the spacing per step by
    /// default — "positions change only slightly from one time step to the
    /// next", yet cumulative). Velocities are a pure function of the particle
    /// id, so trajectories are identical across methods and distributions.
    /// Set to 0.0 for the paper's literal cold start.
    pub thermal_move_fraction: f64,
    /// Use the pencil-decomposed parallel FFT in the particle-mesh solver
    /// (see `Fcs::set_p2nfft_pencil`).
    pub pencil_fft: bool,
    /// Track each particle's initial position as an extra per-particle data
    /// channel, enabling the RMS-displacement diagnostic. Under Method A this
    /// is free (the order never changes); under Method B the channel must be
    /// resorted every step like the velocities, adding redistribution volume
    /// beyond what the paper's application carries — hence off by default.
    pub track_displacement: bool,
    /// Cache communication plans (ghost routes, sort probe schedules, resort
    /// schedules) across timesteps and re-execute them while still valid (see
    /// `Fcs::set_plan_cache`). Plans never change the physics — only the
    /// virtual time spent rebuilding schedules. On by default; turned off for
    /// the unplanned baseline in benchmarks.
    pub plan_cache: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            solver: SolverKind::Fmm,
            resort: false,
            exploit_movement: false,
            dt: 0.01,
            steps: 10,
            tolerance: 1e-2,
            mass: 1.0,
            capacity_factor: 3.0,
            soft_core: true,
            thermal_move_fraction: 0.004,
            pencil_fft: false,
            track_displacement: false,
            plan_cache: true,
        }
    }
}

/// Per-step timing and diagnostics record (virtual seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepRecord {
    /// Time step index (0 = the initial interaction computation).
    pub step: usize,
    /// Solver-internal particle sorting/redistribution time.
    pub sort: f64,
    /// Restoring the original order and distribution (Method A only).
    pub restore: f64,
    /// Creating resort indices + resorting the application's additional
    /// particle data (Method B only).
    pub resort: f64,
    /// Total time of the solver execution including application-side
    /// redistribution of additional data.
    pub total: f64,
    /// Maximum distance any particle moved in the preceding position update.
    pub max_move: f64,
    /// Total energy (kinetic + potential) after this step.
    pub energy: f64,
    /// Whether the solver returned the changed order (Method B succeeded).
    pub resorted: bool,
}

/// Result of a simulation run on one rank.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// One record per solver execution (index 0 is the initial computation).
    pub records: Vec<StepRecord>,
    /// Final local particle count.
    pub final_local: usize,
    /// Root-mean-square displacement of local particles from their initial
    /// positions (a measure of how far the system has drifted).
    pub rms_displacement: f64,
    /// Final virtual clock of this rank.
    pub final_clock: f64,
    /// Communication plans built (including rebuilds) across the run — the
    /// solver's plans plus the resort schedules (see `Fcs::plan_stats`).
    pub plan_builds: u64,
    /// Solver executions / resort calls that reused a cached plan.
    pub plan_hits: u64,
    /// Rollback-and-replay recoveries performed. Only fault-injected runs
    /// (see [`simcomm::run_faulted`]) can recover; plain runs report 0.
    /// Identical on every rank (the trigger is collective).
    pub recoveries: u64,
    /// Final local state (positions, velocities, ... ), usable as a
    /// checkpoint via [`io::Snapshot`] and [`simulate_from`].
    pub final_state: io::Snapshot,
}

/// Run the particle dynamics simulation of the paper's Fig. 3 on the local
/// particle set. Collective: every rank calls it with its share of the
/// system. Initial velocities follow [`SimConfig::thermal_move_fraction`].
pub fn simulate(comm: &mut Comm, bbox: SystemBox, set: ParticleSet, cfg: &SimConfig) -> SimResult {
    let n_total = comm.allreduce(set.len() as u64, |a, b| a + b) as usize;
    let mean_spacing = (bbox.volume() / n_total.max(1) as f64).cbrt();
    let vt = cfg.thermal_move_fraction * mean_spacing / cfg.dt;
    let vel: Vec<Vec3> = set.id().iter().map(|&i| thermal_velocity(i, vt)).collect();
    let n = set.len();
    let (pos, charge, id) = set.into_parts();
    let snapshot = io::Snapshot { bbox, step: 0, pos, charge, id, vel, accel: vec![Vec3::ZERO; n] };
    simulate_from(comm, snapshot, cfg)
}

/// Continue a particle dynamics simulation from a previously saved local
/// state (checkpoint/restart). Collective. The snapshot's velocities and
/// accelerations are used as-is; `cfg.steps` *further* steps are integrated.
pub fn simulate_from(comm: &mut Comm, snapshot: io::Snapshot, cfg: &SimConfig) -> SimResult {
    let p = comm.size();
    let bbox = snapshot.bbox;
    let start_step = snapshot.step;
    let n_total = comm.allreduce(snapshot.len() as u64, |a, b| a + b) as usize;
    let max_local = ((cfg.capacity_factor * n_total as f64 / p as f64) as usize).max(64);
    let mean_spacing = (bbox.volume() / n_total.max(1) as f64).cbrt();

    // Application state. Positions/charges/ids flow through the solver; all
    // *additional* per-particle channels live in one structure-of-arrays
    // `PlaneSet`, so under Method B they ride a single combined byte
    // exchange ([`Fcs::resort_planes`]) with no pack/unpack copies and no
    // steady-state allocation.
    let mut pos = snapshot.pos;
    let mut charge = snapshot.charge;
    let mut id = snapshot.id;
    let mut aux = particles::PlaneSet::new();
    let vel_id = aux.register::<Vec3>("vel");
    let accel_id = aux.register::<Vec3>("accel");
    // Optional diagnostic channel: each particle's initial position. Like
    // velocities, it must be resorted under Method B — so it is only carried
    // when requested (free under Method A, where the order never changes).
    let track = cfg.track_displacement || !cfg.resort;
    let ipos_id = track.then(|| aux.register::<Vec3>("initial_pos"));
    aux.resize(pos.len());
    aux.plane_mut::<Vec3>(vel_id).copy_from_slice(&snapshot.vel);
    aux.plane_mut::<Vec3>(accel_id).copy_from_slice(&snapshot.accel);
    if let Some(ip) = ipos_id {
        aux.plane_mut::<Vec3>(ip).copy_from_slice(&pos);
    }

    // fcs_init / fcs_set_common / fcs_tune.
    let mut handle = Fcs::init(cfg.solver, p);
    handle.set_common(bbox);
    handle.set_tolerance(cfg.tolerance);
    handle.set_resort(cfg.resort);
    if cfg.soft_core {
        handle.set_soft_core(Some(particles::SoftCore::for_spacing(mean_spacing)));
    }
    handle.set_p2nfft_pencil(cfg.pencil_fft);
    handle.set_plan_cache(cfg.plan_cache);
    handle.tune(comm, &pos, &charge);

    let mut records = Vec::with_capacity(cfg.steps + 1);
    let inv_mass = 1.0 / cfg.mass;

    // One solver execution + application-side data handling; returns the
    // step record (without step index/energy fields filled).
    let run_solver = |comm: &mut Comm,
                      handle: &mut Fcs,
                      pos: &mut Vec<Vec3>,
                      charge: &mut Vec<f64>,
                      id: &mut Vec<u64>,
                      aux: &mut particles::PlaneSet|
     -> (StepRecord, Vec<f64>) {
        let t0 = comm.clock();
        let out = handle.run(comm, pos, charge, id, max_local);
        let mut rec = StepRecord {
            sort: out.timings.sort,
            restore: out.timings.restore,
            resort: out.timings.resort_create,
            resorted: out.resorted,
            ..StepRecord::default()
        };
        if out.resorted {
            // Method B: adopt the solver's order; every registered plane
            // (velocities, accelerations, tracked initial positions) rides
            // one combined byte exchange round (the paper resorts velocities
            // and accelerations together), landing in the set's back slabs.
            let t_resort = comm.clock();
            handle.resort_planes(comm, aux);
            rec.resort += comm.clock() - t_resort;
        }
        *pos = out.pos;
        *charge = out.charge;
        *id = out.id;
        // Determine accelerations from the calculated field values.
        let accel = aux.plane_mut::<Vec3>(accel_id);
        for (a, (e, q)) in accel.iter_mut().zip(out.field.iter().zip(charge.iter())) {
            *a = *e * (q * inv_mass);
        }
        comm.with_phase("integrate", |c| c.compute(simcomm::Work::ParticleOp, pos.len() as f64));
        rec.total = comm.clock() - t0;
        (rec, out.potential)
    };

    // Initial interactions (line 5 of Fig. 3).
    let (mut rec, potential) =
        run_solver(comm, &mut handle, &mut pos, &mut charge, &mut id, &mut aux);
    rec.step = start_step;
    rec.energy = total_energy(comm, &potential, &charge, aux.plane::<Vec3>(vel_id), cfg.mass);
    records.push(rec);

    // --- Fault recovery (fault-injected worlds only; see `simcomm::fault`).
    // An in-memory checkpoint of the local state is kept at step boundaries;
    // when a step completes with a newly injected rank stall or wait timeout
    // anywhere in the world (detected collectively from the per-rank fault
    // counters), the loop rolls back to the checkpoint, drops every cached
    // communication plan (they carry movement accounting relative to the
    // state they were built for) and replays. Faults delay — they never
    // corrupt payloads — so the replayed trajectory is bitwise identical to
    // an unfaulted run: recovery masks the fault at the cost of redone work.
    // On clean worlds `recovery_on` is false and this entire block costs
    // nothing (no extra collectives), keeping plain runs bit-for-bit
    // identical to the pre-fault-layer behaviour.
    struct Checkpoint {
        state: io::Snapshot,
        aux: particles::PlaneSet,
        records: usize,
    }
    let recovery_on = comm.fault_active();
    const CHECKPOINT_INTERVAL: usize = 4;
    const MAX_RECOVERIES: u64 = 2;
    let mut recoveries = 0u64;
    let mut fault_mark = comm.stats().timeouts + comm.stats().stalls;
    let take_checkpoint = |completed: usize,
                           pos: &Vec<Vec3>,
                           charge: &Vec<f64>,
                           id: &Vec<u64>,
                           aux: &particles::PlaneSet,
                           records: &Vec<StepRecord>|
     -> Checkpoint {
        Checkpoint {
            state: io::Snapshot {
                bbox,
                step: start_step + completed,
                pos: pos.clone(),
                charge: charge.clone(),
                id: id.clone(),
                vel: aux.plane::<Vec3>(vel_id).to_vec(),
                accel: aux.plane::<Vec3>(accel_id).to_vec(),
            },
            aux: aux.clone(),
            records: records.len(),
        }
    };
    let mut checkpoint =
        recovery_on.then(|| take_checkpoint(0, &pos, &charge, &id, &aux, &records));

    // Simulation loop (lines 8-12 of Fig. 3).
    let mut step = 1usize;
    while step <= cfg.steps {
        // Positions x_{i+1} (Eq. 1), tracking the maximum movement.
        comm.enter_phase("integrate");
        let mut max_move2: f64 = 0.0;
        {
            let vel = aux.plane::<Vec3>(vel_id);
            let accel = aux.plane::<Vec3>(accel_id);
            for i in 0..pos.len() {
                let delta = vel[i] * cfg.dt + accel[i] * (0.5 * cfg.dt * cfg.dt);
                max_move2 = max_move2.max(delta.norm2());
                pos[i] = bbox.wrap(pos[i] + delta);
            }
        }
        comm.compute(simcomm::Work::ParticleOp, pos.len() as f64);
        let max_move = comm.allreduce(max_move2, f64::max).sqrt();
        // A fault plan may order the movement hint to lie (under-report the
        // true movement by a factor) this step — the violation the solvers'
        // movement-bound guards detect and mask. Drawn from the step number
        // only, so every rank lies identically.
        let mut hint = if cfg.exploit_movement { Some(max_move) } else { None };
        if recovery_on {
            if let (Some(m), Some(f)) =
                (hint, comm.fault_plan().hint_lie((start_step + step) as u64))
            {
                hint = Some(m * f);
            }
        }
        handle.set_max_particle_move(hint);

        // Old accelerations a_i are needed for Eq. 2; under Method B they are
        // redistributed by run_solver before being combined below, so stash a
        // copy *after* the resort by recomputing v half-step first.
        // Standard kick-drift-kick equivalent: v += a_i dt/2 before the
        // solver, v += a_{i+1} dt/2 after — algebraically identical to Eq. 2
        // and free of old-acceleration bookkeeping across redistribution.
        {
            let (vel, accel) = aux.plane_pair_mut::<Vec3, Vec3>(vel_id, accel_id);
            for (v, a) in vel.iter_mut().zip(accel) {
                *v += *a * (0.5 * cfg.dt);
            }
        }
        comm.compute(simcomm::Work::ParticleOp, pos.len() as f64);
        comm.exit_phase();

        // fcs_run + data handling (line 10).
        let (mut rec, potential) =
            run_solver(comm, &mut handle, &mut pos, &mut charge, &mut id, &mut aux);

        // Velocities v_{i+1} (Eq. 2, second half-kick).
        comm.enter_phase("integrate");
        {
            let (vel, accel) = aux.plane_pair_mut::<Vec3, Vec3>(vel_id, accel_id);
            for (v, a) in vel.iter_mut().zip(accel) {
                *v += *a * (0.5 * cfg.dt);
            }
        }
        comm.compute(simcomm::Work::ParticleOp, pos.len() as f64);

        rec.step = start_step + step;
        rec.max_move = max_move;
        rec.energy = total_energy(comm, &potential, &charge, aux.plane::<Vec3>(vel_id), cfg.mass);
        comm.exit_phase();
        records.push(rec);

        if recovery_on {
            // Collective fault check: did any rank accumulate new stalls or
            // wait timeouts during this step? The trigger is an allreduce of
            // the counter deltas, so every rank takes the same decision.
            let mark = comm.stats().timeouts + comm.stats().stalls;
            let newly = mark - fault_mark;
            fault_mark = mark;
            if comm.allreduce(newly, |a, b| a + b) > 0 && recoveries < MAX_RECOVERIES {
                recoveries += 1;
                let cp = checkpoint.as_ref().expect("checkpoint taken before the loop");
                pos = cp.state.pos.clone();
                charge = cp.state.charge.clone();
                id = cp.state.id.clone();
                aux = cp.aux.clone();
                records.truncate(cp.records);
                handle.invalidate_plans();
                step = cp.state.step - start_step + 1;
                continue;
            }
            if step.is_multiple_of(CHECKPOINT_INTERVAL) {
                checkpoint = Some(take_checkpoint(step, &pos, &charge, &id, &aux, &records));
            }
        }
        step += 1;
    }

    // Drift diagnostic: RMS displacement from the initial positions (NaN if
    // the channel was not tracked).
    let rms_displacement = if let Some(ip) = ipos_id.filter(|_| !pos.is_empty()) {
        let initial_pos = aux.plane::<Vec3>(ip);
        let local_sum: f64 =
            pos.iter().zip(initial_pos).map(|(x, x0)| bbox.min_image(*x, *x0).norm2()).sum();
        let global_sum = comm.allreduce(local_sum, |a, b| a + b);
        (global_sum / n_total as f64).sqrt()
    } else {
        let _ = comm.allreduce(0.0f64, |a, b| a + b);
        f64::NAN
    };

    let (plan_builds, plan_hits) = handle.plan_stats();
    SimResult {
        records,
        final_local: pos.len(),
        rms_displacement,
        final_clock: comm.clock(),
        plan_builds,
        plan_hits,
        recoveries,
        final_state: io::Snapshot {
            bbox,
            step: start_step + cfg.steps,
            pos,
            charge,
            id,
            vel: aux.plane::<Vec3>(vel_id).to_vec(),
            accel: aux.plane::<Vec3>(accel_id).to_vec(),
        },
    }
}

/// Deterministic approximately-Gaussian thermal velocity for particle `id`
/// with per-component standard deviation `vt` (pure function of the id, so
/// every rank computes the same velocity for the same particle).
fn thermal_velocity(id: u64, vt: f64) -> Vec3 {
    if vt == 0.0 {
        return Vec3::ZERO;
    }
    let mut h = particles::systems::splitmix64(id ^ 0x7468_6572_6d61_6c21);
    let mut gauss = || {
        // Sum of four uniforms, centred and scaled to unit variance.
        let mut acc = 0.0;
        for _ in 0..4 {
            h = particles::systems::splitmix64(h);
            acc += (h >> 11) as f64 / (1u64 << 53) as f64;
        }
        (acc - 2.0) * (3.0f64).sqrt()
    };
    Vec3::new(gauss() * vt, gauss() * vt, gauss() * vt)
}

/// A time step scaled to the system's natural oscillation time
/// `sqrt(m a^3 / q^2)` for mean inter-particle spacing `a` (unit charges):
/// `dt = 0.0023 * sqrt(m a^3)`. For the paper's benchmark density
/// (829 440 ions in a 248^3 box, mean spacing ~2.65) this reproduces the
/// paper's `dt = 0.01`; scaled-down systems with larger spacing get a
/// correspondingly larger step so the per-step particle movement (and hence
/// the redistribution behaviour) matches.
pub fn suggested_dt(mean_spacing: f64, mass: f64) -> f64 {
    0.0023 * (mass * mean_spacing.powi(3)).sqrt()
}

/// Global total energy: `0.5 sum q_i phi_i + 0.5 m sum |v_i|^2`.
fn total_energy(
    comm: &mut Comm,
    potential: &[f64],
    charge: &[f64],
    vel: &[Vec3],
    mass: f64,
) -> f64 {
    let pot: f64 = 0.5 * potential.iter().zip(charge).map(|(p, q)| p * q).sum::<f64>();
    let kin: f64 = 0.5 * mass * vel.iter().map(|v| v.norm2()).sum::<f64>();
    comm.allreduce(pot + kin, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use particles::{local_set, InitialDistribution, IonicCrystal};
    use simcomm::{run, run_faulted, CartGrid, FaultPlan, MachineModel, StallSpec};

    fn sim(
        solver: SolverKind,
        p: usize,
        steps: usize,
        resort: bool,
        exploit: bool,
        dist: InitialDistribution,
    ) -> Vec<SimResult> {
        let c = IonicCrystal::cubic(6, 1.0, 0.2, 42);
        let bbox = c.system_box();
        let cfg = SimConfig {
            solver,
            resort,
            exploit_movement: exploit,
            steps,
            tolerance: 1e-2,
            ..SimConfig::default()
        };
        let out = run(p, MachineModel::juropa_like(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&c, dist, comm.rank(), p, dims);
            simulate(comm, bbox, set, &cfg)
        });
        out.results
    }

    #[test]
    fn suggested_dt_matches_paper_at_paper_density() {
        // Paper: 829440 ions in a 248^3 box (mean spacing ~2.65), dt = 0.01.
        let spacing = (248.0f64.powi(3) / 829_440.0).cbrt();
        let dt = suggested_dt(spacing, 1.0);
        assert!((dt - 0.01).abs() < 0.0015, "dt {dt} should be ~0.01");
        // Scales with a^(3/2) and sqrt(m).
        assert!((suggested_dt(4.0 * spacing, 1.0) / dt - 8.0).abs() < 1e-9);
        assert!((suggested_dt(spacing, 4.0) / dt - 2.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_velocities_are_deterministic_and_centered() {
        let a = thermal_velocity(12345, 0.5);
        let b = thermal_velocity(12345, 0.5);
        assert_eq!(a, b, "pure function of the id");
        assert_eq!(thermal_velocity(7, 0.0), Vec3::ZERO);
        // Mean over many ids is near zero; variance near vt^2.
        let n = 20_000u64;
        let mut mean = Vec3::ZERO;
        let mut var = 0.0;
        for id in 0..n {
            let v = thermal_velocity(id, 1.0);
            mean += v;
            var += v.norm2();
        }
        mean = mean / n as f64;
        var /= (3 * n) as f64;
        assert!(mean.norm() < 0.02, "mean {mean:?}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn runs_t_plus_one_solver_executions() {
        let results = sim(SolverKind::Fmm, 2, 5, false, false, InitialDistribution::Random);
        for r in &results {
            assert_eq!(r.records.len(), 6, "T+1 solver executions");
            assert_eq!(r.records[0].step, 0);
            assert_eq!(r.records[5].step, 5);
        }
    }

    #[test]
    fn energy_is_approximately_conserved() {
        for solver in [SolverKind::Fmm, SolverKind::P2Nfft] {
            let results = sim(solver, 4, 20, false, false, InitialDistribution::Grid);
            let recs = &results[0].records;
            let e0 = recs[0].energy;
            let emax = recs.iter().map(|r| r.energy).fold(f64::MIN, f64::max);
            let emin = recs.iter().map(|r| r.energy).fold(f64::MAX, f64::min);
            // Leapfrog with a 1e-2-accurate solver: generous but bounded.
            assert!(
                (emax - emin).abs() < 0.05 * e0.abs(),
                "{solver:?}: energy drifted from {e0}: [{emin}, {emax}]"
            );
        }
    }

    #[test]
    fn particles_conserved_across_steps() {
        let results = sim(SolverKind::P2Nfft, 4, 8, true, false, InitialDistribution::Random);
        let total: usize = results.iter().map(|r| r.final_local).sum();
        assert_eq!(total, 216);
    }

    #[test]
    fn methods_a_and_b_produce_same_trajectories() {
        // Energies per step must match bit-for-bit-ish between methods (the
        // same forces are computed, only the data handling differs).
        for solver in [SolverKind::Fmm, SolverKind::P2Nfft] {
            let a = sim(solver, 4, 6, false, false, InitialDistribution::Grid);
            let b = sim(solver, 4, 6, true, false, InitialDistribution::Grid);
            for (ra, rb) in a[0].records.iter().zip(&b[0].records) {
                assert!(
                    (ra.energy - rb.energy).abs() < 1e-6 * ra.energy.abs().max(1.0),
                    "{solver:?} step {}: {} vs {}",
                    ra.step,
                    ra.energy,
                    rb.energy
                );
            }
        }
    }

    #[test]
    fn method_b_resorts_every_step() {
        let results = sim(SolverKind::P2Nfft, 8, 4, true, false, InitialDistribution::Random);
        for r in &results {
            for rec in &r.records {
                assert!(rec.resorted);
                assert_eq!(rec.restore, 0.0);
            }
            // Resorting costs something (virtual time).
            assert!(r.records[1].resort > 0.0);
        }
    }

    #[test]
    fn method_a_restores_every_step() {
        let results = sim(SolverKind::Fmm, 4, 4, false, false, InitialDistribution::Random);
        for r in &results {
            for rec in &r.records {
                assert!(!rec.resorted);
                assert_eq!(rec.resort, 0.0);
                assert!(rec.restore > 0.0);
            }
        }
    }

    #[test]
    fn movement_exploitation_matches_plain_method_b() {
        for solver in [SolverKind::Fmm, SolverKind::P2Nfft] {
            let plain = sim(solver, 8, 6, true, false, InitialDistribution::Grid);
            let exploit = sim(solver, 8, 6, true, true, InitialDistribution::Grid);
            for (ra, rb) in plain[0].records.iter().zip(&exploit[0].records) {
                assert!(
                    (ra.energy - rb.energy).abs() < 1e-6 * ra.energy.abs().max(1.0),
                    "{solver:?} step {}: {} vs {}",
                    ra.step,
                    ra.energy,
                    rb.energy
                );
            }
        }
    }

    #[test]
    fn ewald_coupled_simulation_conserves_energy_tightly() {
        // The exact reference solver through the same pipeline: with exact
        // forces, leapfrog conserves energy much more tightly than with the
        // 1e-2-accurate fast solvers.
        let results = sim(SolverKind::Ewald, 2, 15, true, false, InitialDistribution::Random);
        let recs = &results[0].records;
        let e0 = recs[0].energy;
        for r in recs {
            assert!(
                (r.energy - e0).abs() < 5e-3 * e0.abs(),
                "step {}: {} vs {}",
                r.step,
                r.energy,
                e0
            );
            assert!(r.resorted, "Ewald under Method B reports resorted");
            assert_eq!(r.sort, 0.0, "Ewald never sorts");
        }
    }

    #[test]
    fn max_move_is_small_and_positive() {
        let results = sim(SolverKind::Fmm, 2, 5, false, false, InitialDistribution::Grid);
        for r in &results {
            for rec in &r.records[1..] {
                assert!(rec.max_move > 0.0, "particles must move");
                assert!(rec.max_move < 0.5, "movement per step must be small");
            }
        }
    }

    #[test]
    fn plan_cache_is_bitwise_invisible_to_the_physics() {
        // The tentpole invariant: cached communication plans (ghost epochs,
        // resort schedules, quiet-step shortcuts) change only virtual time,
        // never results. Per-step energies must match the plan-off baseline
        // *exactly* — both in the small-movement regime where cached epochs
        // are reused for many steps and in the large-movement regime where
        // they are invalidated and rebuilt under way.
        let c = IonicCrystal::cubic(8, 1.0, 0.15, 11);
        let bbox = c.system_box();
        let p = 8;
        for thermal in [0.004, 0.2] {
            let run_sim = |plan_cache: bool| -> (Vec<StepRecord>, u64, u64) {
                let c = c.clone();
                let cfg = SimConfig {
                    solver: SolverKind::P2Nfft,
                    resort: true,
                    exploit_movement: true,
                    steps: 8,
                    tolerance: 1e-2,
                    thermal_move_fraction: thermal,
                    plan_cache,
                    ..SimConfig::default()
                };
                let out = run(p, MachineModel::juropa_like(), move |comm| {
                    let set = local_set(
                        &c,
                        InitialDistribution::Grid,
                        comm.rank(),
                        p,
                        CartGrid::balanced(p).dims(),
                    );
                    let r = simulate(comm, bbox, set, &cfg);
                    (r.records, r.plan_builds, r.plan_hits)
                });
                out.results[0].clone()
            };
            let (planned, builds, hits) = run_sim(true);
            let (unplanned, _, base_hits) = run_sim(false);
            assert_eq!(base_hits, 0, "plan-off baseline must never reuse a plan");
            for (a, b) in planned.iter().zip(&unplanned) {
                assert_eq!(
                    a.energy.to_bits(),
                    b.energy.to_bits(),
                    "thermal {thermal} step {}: planned energy {} != unplanned {}",
                    a.step,
                    a.energy,
                    b.energy
                );
            }
            assert!(builds > 0, "planned run must build plans");
            if thermal == 0.004 {
                assert!(
                    hits > 0,
                    "small movement must reuse cached plans (builds {builds}, hits {hits})"
                );
            }
        }
    }

    #[test]
    fn inert_fault_plan_is_bitwise_identical_to_plain_run() {
        // run_faulted(FaultPlan::none()) must be bit-for-bit the pre-fault
        // behaviour: identical records (including virtual timings), clocks,
        // final states and zero recoveries.
        let c = IonicCrystal::cubic(6, 1.0, 0.2, 42);
        let bbox = c.system_box();
        let p = 4;
        let cfg = SimConfig {
            solver: SolverKind::P2Nfft,
            resort: true,
            exploit_movement: true,
            steps: 5,
            ..SimConfig::default()
        };
        let go = |faulted: bool| -> Vec<SimResult> {
            let c = c.clone();
            let cfg = cfg.clone();
            let body = move |comm: &mut simcomm::Comm| {
                let set = local_set(
                    &c,
                    InitialDistribution::Grid,
                    comm.rank(),
                    p,
                    CartGrid::balanced(p).dims(),
                );
                simulate(comm, bbox, set, &cfg)
            };
            if faulted {
                run_faulted(p, MachineModel::juropa_like(), FaultPlan::none(), body).results
            } else {
                run(p, MachineModel::juropa_like(), body).results
            }
        };
        let plain = go(false);
        let inert = go(true);
        for (a, b) in plain.iter().zip(&inert) {
            assert_eq!(a.records, b.records, "records must match bit-for-bit");
            assert_eq!(a.final_clock.to_bits(), b.final_clock.to_bits(), "clocks must match");
            assert_eq!(a.final_state, b.final_state);
            assert_eq!(b.recoveries, 0, "inert plans never trigger recovery");
        }
    }

    #[test]
    fn recovery_masks_injected_stall_and_timeouts_bitwise() {
        // A scheduled rank stall plus an aggressive wait timeout: the
        // recovery loop must roll back to the in-memory checkpoint and
        // replay, and the recovered trajectory must be bitwise identical to
        // the unfaulted run — energies, movement, final particle state.
        let c = IonicCrystal::cubic(6, 1.0, 0.2, 42);
        let bbox = c.system_box();
        let p = 4;
        let cfg = SimConfig {
            solver: SolverKind::Fmm,
            resort: true,
            exploit_movement: false,
            steps: 6,
            ..SimConfig::default()
        };
        let clean = {
            let c = c.clone();
            let cfg = cfg.clone();
            run(p, MachineModel::juropa_like(), move |comm| {
                let set = local_set(
                    &c,
                    InitialDistribution::Grid,
                    comm.rank(),
                    p,
                    CartGrid::balanced(p).dims(),
                );
                simulate(comm, bbox, set, &cfg)
            })
            .results
        };
        let fault = FaultPlan {
            stall: Some(StallSpec { rank: 1, after_ops: 120, seconds: 0.25 }),
            wait_timeout_seconds: Some(1e-6),
            ..FaultPlan::none()
        };
        let faulted = {
            let c = c.clone();
            let cfg = cfg.clone();
            run_faulted(p, MachineModel::juropa_like(), fault, move |comm| {
                let set = local_set(
                    &c,
                    InitialDistribution::Grid,
                    comm.rank(),
                    p,
                    CartGrid::balanced(p).dims(),
                );
                simulate(comm, bbox, set, &cfg)
            })
            .results
        };
        let rec0 = faulted[0].recoveries;
        assert!(rec0 >= 1, "the injected faults must trigger at least one recovery");
        for (a, b) in clean.iter().zip(&faulted) {
            assert_eq!(b.recoveries, rec0, "the recovery decision is collective");
            assert_eq!(a.recoveries, 0);
            assert_eq!(a.records.len(), b.records.len(), "replay must keep T+1 records");
            for (ra, rb) in a.records.iter().zip(&b.records) {
                assert_eq!(ra.step, rb.step);
                assert_eq!(
                    ra.energy.to_bits(),
                    rb.energy.to_bits(),
                    "step {}: faulted energy {} != clean {}",
                    ra.step,
                    rb.energy,
                    ra.energy
                );
                assert_eq!(ra.max_move.to_bits(), rb.max_move.to_bits());
            }
            assert_eq!(a.final_state, b.final_state, "recovered state must be bitwise clean");
        }
    }

    #[test]
    fn method_b_is_faster_per_step_after_first() {
        // The core claim of the paper, in miniature: after the first step,
        // Method B's redistribution is cheaper than Method A's. Needs enough
        // particles per rank that redistribution volume (which A pays every
        // step) outweighs Method B's fixed extra collectives (capacity check,
        // resort-index construction).
        let c = IonicCrystal::cubic(20, 1.0, 0.2, 42); // 8000 particles, 1000/rank
        let bbox = c.system_box();
        let p = 8;
        let run_method = |resort: bool| -> Vec<StepRecord> {
            let c = c.clone();
            let cfg = SimConfig {
                solver: SolverKind::P2Nfft,
                resort,
                steps: 4,
                tolerance: 1e-2,
                ..SimConfig::default()
            };
            let out = run(p, MachineModel::juropa_like(), move |comm| {
                let set = local_set(
                    &c,
                    InitialDistribution::Random,
                    comm.rank(),
                    p,
                    CartGrid::balanced(p).dims(),
                );
                simulate(comm, bbox, set, &cfg)
            });
            out.results[0].records.clone()
        };
        let a = run_method(false);
        let b = run_method(true);
        let redist_a: f64 = a[2..].iter().map(|r| r.sort + r.restore).sum();
        let redist_b: f64 = b[2..].iter().map(|r| r.sort + r.resort).sum();
        assert!(
            redist_b < redist_a,
            "method B redistribution {redist_b} must beat method A {redist_a}"
        );
    }
}
