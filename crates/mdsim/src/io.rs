//! Particle system input/output: a plain XYZ-with-charge text format (the
//! paper's application "reads the particle system from an input file"), plus
//! full-state text snapshots for checkpoint/restart (no extra dependencies;
//! `f64` values round-trip exactly through Rust's shortest-float formatting).

use std::io::{BufRead, Write};
use std::path::Path;

use particles::{ParticleSet, SystemBox, Vec3};

/// Why loading a [`Snapshot`] failed. Snapshots carry a length + checksum
/// footer, so a truncated or bit-flipped file is detected and reported as a
/// typed error instead of silently propagating garbage state into a restart.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// The file ends before the expected content (missing lines or a missing
    /// footer), or the footer's recorded length disagrees with the content.
    Truncated,
    /// The footer checksum does not match the content — the file was
    /// corrupted in place (bit flips, partial overwrite).
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum recomputed from the content.
        actual: u64,
    },
    /// The content is structurally invalid (bad header, short particle line,
    /// unparsable number).
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated (content or footer missing)"),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (footer {expected:016x}, content {actual:016x})"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Checksum of the snapshot content: a splitmix64 fold over the raw bytes.
/// Not cryptographic — it exists to catch truncation, bit flips and partial
/// overwrites, the realistic failure modes of a checkpoint file.
fn content_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0x5348_4e50_5348_4f54u64; // "SHNPSHOT"
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = particles::systems::splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// A complete, self-describing simulation snapshot (one rank's share or a
/// gathered world state).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The system box.
    pub bbox: SystemBox,
    /// Completed time steps.
    pub step: usize,
    /// Positions.
    pub pos: Vec<Vec3>,
    /// Charges.
    pub charge: Vec<f64>,
    /// Global particle ids.
    pub id: Vec<u64>,
    /// Velocities.
    pub vel: Vec<Vec3>,
    /// Accelerations.
    pub accel: Vec<Vec3>,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            bbox: SystemBox::cubic(1.0),
            step: 0,
            pos: Vec::new(),
            charge: Vec::new(),
            id: Vec::new(),
            vel: Vec::new(),
            accel: Vec::new(),
        }
    }
}

impl Snapshot {
    /// Number of particles in the snapshot.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Write the snapshot to a text file:
    ///
    /// ```text
    /// snapshot <n> step <step>
    /// box <lx> <ly> <lz> periodic <px> <py> <pz>
    /// <id> <q> <x> <y> <z> <vx> <vy> <vz> <ax> <ay> <az>
    /// ...
    /// checksum <content-bytes> <splitmix64-fold-hex>
    /// ```
    ///
    /// The final line is an integrity footer over everything before it; a
    /// restart refuses to load a file whose footer is missing or disagrees
    /// (see [`Snapshot::load`] and [`SnapshotError`]).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut content = String::new();
        let _ = writeln!(content, "snapshot {} step {}", self.len(), self.step);
        let _ = writeln!(
            content,
            "box {} {} {} periodic {} {} {}",
            self.bbox.lengths.x(),
            self.bbox.lengths.y(),
            self.bbox.lengths.z(),
            u8::from(self.bbox.periodic[0]),
            u8::from(self.bbox.periodic[1]),
            u8::from(self.bbox.periodic[2]),
        );
        for i in 0..self.len() {
            let (p, v, a) = (self.pos[i], self.vel[i], self.accel[i]);
            let _ = writeln!(
                content,
                "{} {} {} {} {} {} {} {} {} {} {}",
                self.id[i],
                self.charge[i],
                p.x(),
                p.y(),
                p.z(),
                v.x(),
                v.y(),
                v.z(),
                a.x(),
                a.y(),
                a.z(),
            );
        }
        let footer =
            format!("checksum {} {:016x}\n", content.len(), content_checksum(content.as_bytes()));
        let mut w = std::fs::File::create(path)?;
        w.write_all(content.as_bytes())?;
        w.write_all(footer.as_bytes())?;
        Ok(())
    }

    /// Like [`Snapshot::save`], but fsync the file before returning, so a
    /// supervisor (e.g. a campaign runner journaling "checkpoint written")
    /// can rely on the checkpoint surviving a `kill -9` of the process — an
    /// OS crash notwithstanding — once this call returns.
    pub fn save_durable(&self, path: &Path) -> std::io::Result<()> {
        self.save(path)?;
        std::fs::OpenOptions::new().write(true).open(path)?.sync_data()
    }

    /// Read a snapshot written by [`Snapshot::save`], verifying the length +
    /// checksum footer first. A file that was truncated, bit-flipped or
    /// partially overwritten is rejected with the corresponding
    /// [`SnapshotError`] — garbage state never reaches the restart.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        let raw = std::fs::read_to_string(path)?;
        // Footer: the last non-empty line must be `checksum <len> <hex>`.
        let body_end = raw.trim_end_matches('\n').rfind('\n').ok_or(SnapshotError::Truncated)?;
        let (content, footer) = raw.split_at(body_end + 1);
        let tok: Vec<&str> = footer.split_whitespace().collect();
        if tok.len() != 3 || tok[0] != "checksum" {
            return Err(SnapshotError::Truncated);
        }
        let len: usize = tok[1].parse().map_err(|_| SnapshotError::Malformed("bad footer len"))?;
        let expected = u64::from_str_radix(tok[2], 16)
            .map_err(|_| SnapshotError::Malformed("bad footer checksum"))?;
        if content.len() != len {
            return Err(SnapshotError::Truncated);
        }
        let actual = content_checksum(content.as_bytes());
        if actual != expected {
            return Err(SnapshotError::ChecksumMismatch { expected, actual });
        }

        let bad = SnapshotError::Malformed;
        let mut lines = content.lines();
        let head = lines.next().ok_or(bad("missing header"))?;
        let tok: Vec<&str> = head.split_whitespace().collect();
        if tok.len() != 4 || tok[0] != "snapshot" || tok[2] != "step" {
            return Err(bad("malformed snapshot header"));
        }
        let n: usize = tok[1].parse().map_err(|_| bad("bad count"))?;
        let step: usize = tok[3].parse().map_err(|_| bad("bad step"))?;
        let boxline = lines.next().ok_or(bad("missing box line"))?;
        let tok: Vec<&str> = boxline.split_whitespace().collect();
        if tok.len() != 8 || tok[0] != "box" || tok[4] != "periodic" {
            return Err(bad("malformed box line"));
        }
        let pf = |s: &str| s.parse::<f64>().map_err(|_| bad("bad number"));
        let bbox = SystemBox::new(
            Vec3::ZERO,
            Vec3::new(pf(tok[1])?, pf(tok[2])?, pf(tok[3])?),
            [tok[5] == "1", tok[6] == "1", tok[7] == "1"],
        );
        let mut snap = Snapshot {
            bbox,
            step,
            pos: Vec::with_capacity(n),
            charge: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            accel: Vec::with_capacity(n),
        };
        for _ in 0..n {
            let line = lines.next().ok_or(SnapshotError::Truncated)?;
            let tok: Vec<&str> = line.split_whitespace().collect();
            if tok.len() != 11 {
                return Err(bad("malformed snapshot particle line"));
            }
            snap.id.push(tok[0].parse().map_err(|_| bad("bad id"))?);
            snap.charge.push(pf(tok[1])?);
            snap.pos.push(Vec3::new(pf(tok[2])?, pf(tok[3])?, pf(tok[4])?));
            snap.vel.push(Vec3::new(pf(tok[5])?, pf(tok[6])?, pf(tok[7])?));
            snap.accel.push(Vec3::new(pf(tok[8])?, pf(tok[9])?, pf(tok[10])?));
        }
        Ok(snap)
    }
}

/// Write a particle set in the extended-XYZ-like text format:
///
/// ```text
/// <n>
/// box <lx> <ly> <lz> periodic <px> <py> <pz>
/// <id> <charge> <x> <y> <z>
/// ...
/// ```
pub fn write_xyzq<W: Write>(mut w: W, bbox: &SystemBox, set: &ParticleSet) -> std::io::Result<()> {
    writeln!(w, "{}", set.len())?;
    writeln!(
        w,
        "box {} {} {} periodic {} {} {}",
        bbox.lengths.x(),
        bbox.lengths.y(),
        bbox.lengths.z(),
        u8::from(bbox.periodic[0]),
        u8::from(bbox.periodic[1]),
        u8::from(bbox.periodic[2]),
    )?;
    for i in 0..set.len() {
        writeln!(
            w,
            "{} {} {} {} {}",
            set.id()[i],
            set.charge()[i],
            set.pos()[i].x(),
            set.pos()[i].y(),
            set.pos()[i].z()
        )?;
    }
    Ok(())
}

/// Read a particle set written by [`write_xyzq`]. Returns the box and set.
pub fn read_xyzq<R: BufRead>(r: R) -> std::io::Result<(SystemBox, ParticleSet)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = r.lines();
    let n: usize = lines
        .next()
        .ok_or_else(|| bad("missing count line"))??
        .trim()
        .parse()
        .map_err(|_| bad("bad particle count"))?;
    let header = lines.next().ok_or_else(|| bad("missing box line"))??;
    let tok: Vec<&str> = header.split_whitespace().collect();
    if tok.len() != 8 || tok[0] != "box" || tok[4] != "periodic" {
        return Err(bad("malformed box line"));
    }
    let parse_f = |s: &str| s.parse::<f64>().map_err(|_| bad("bad box number"));
    let lengths = Vec3::new(parse_f(tok[1])?, parse_f(tok[2])?, parse_f(tok[3])?);
    let mut periodic = [false; 3];
    for d in 0..3 {
        periodic[d] = tok[5 + d] == "1";
    }
    let bbox = SystemBox::new(Vec3::ZERO, lengths, periodic);
    let mut set = ParticleSet::with_capacity(n);
    for _ in 0..n {
        let line = lines.next().ok_or_else(|| bad("truncated particle data"))??;
        let tok: Vec<&str> = line.split_whitespace().collect();
        if tok.len() != 5 {
            return Err(bad("malformed particle line"));
        }
        let id: u64 = tok[0].parse().map_err(|_| bad("bad id"))?;
        let q = parse_f(tok[1])?;
        set.push(Vec3::new(parse_f(tok[2])?, parse_f(tok[3])?, parse_f(tok[4])?), q, id);
    }
    Ok((bbox, set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use particles::IonicCrystal;

    fn sample_set() -> (SystemBox, ParticleSet) {
        let c = IonicCrystal::cubic(3, 1.5, 0.2, 4);
        let bbox = c.system_box();
        let mut set = ParticleSet::default();
        for i in 0..c.n() as u64 {
            let (x, q) = c.particle(i);
            set.push(x, q, i);
        }
        (bbox, set)
    }

    #[test]
    fn xyzq_roundtrip() {
        let (bbox, set) = sample_set();
        let mut buf = Vec::new();
        write_xyzq(&mut buf, &bbox, &set).unwrap();
        let (bbox2, set2) = read_xyzq(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(bbox2.lengths, bbox.lengths);
        assert_eq!(bbox2.periodic, bbox.periodic);
        assert_eq!(set2.len(), set.len());
        for i in 0..set.len() {
            assert_eq!(set2.id()[i], set.id()[i]);
            assert_eq!(set2.charge()[i], set.charge()[i]);
            assert!((set2.pos()[i] - set.pos()[i]).norm() < 1e-12);
        }
    }

    #[test]
    fn xyzq_rejects_malformed_input() {
        assert!(read_xyzq(std::io::Cursor::new(b"not a number\n".as_slice())).is_err());
        assert!(read_xyzq(std::io::Cursor::new(b"2\nnobox 1 2 3\n".as_slice())).is_err());
        assert!(
            read_xyzq(std::io::Cursor::new(
                b"2\nbox 1 1 1 periodic 1 1 1\n0 1.0 0.1 0.1 0.1\n".as_slice()
            ))
            .is_err(),
            "truncated particle data must be rejected"
        );
        assert!(
            read_xyzq(std::io::Cursor::new(
                b"1\nbox 1 1 1 periodic 1 1 1\n0 1.0 0.1 0.1\n".as_slice()
            ))
            .is_err(),
            "short particle line must be rejected"
        );
    }

    #[test]
    fn snapshot_roundtrip_via_file() {
        let (bbox, set) = sample_set();
        let n = set.len();
        let snap = Snapshot {
            bbox,
            step: 42,
            pos: set.pos().to_vec(),
            charge: set.charge().to_vec(),
            id: set.id().to_vec(),
            vel: vec![Vec3::new(0.1, -0.2, 0.3); n],
            accel: vec![Vec3::ZERO; n],
        };
        let dir = std::env::temp_dir().join("cpr_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_load_rejects_truncated_and_bit_flipped_files() {
        let (bbox, set) = sample_set();
        let n = set.len();
        let snap = Snapshot {
            bbox,
            step: 7,
            pos: set.pos().to_vec(),
            charge: set.charge().to_vec(),
            id: set.id().to_vec(),
            vel: vec![Vec3::new(0.25, -0.5, 0.125); n],
            accel: vec![Vec3::new(-1.0, 2.0, -3.0); n],
        };
        let dir = std::env::temp_dir().join("cpr_snapshot_corruption_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        snap.save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        assert!(Snapshot::load(&path).is_ok(), "pristine file must load");

        // Truncation at various points: a typed error, never garbage. (The
        // sole cut that may load is one that only trims the trailing
        // newline — the data must then still be bit-for-bit intact.)
        for cut in [0, 1, pristine.len() / 3, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            match Snapshot::load(&path) {
                Err(
                    SnapshotError::Truncated
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::Malformed(_),
                ) => {}
                Err(e) => panic!("cut at {cut}: unexpected error {e}"),
                Ok(loaded) => {
                    assert_eq!(loaded, snap, "cut at {cut} loaded altered state")
                }
            }
        }

        // Deterministic bit flips all over the file: every one must surface
        // as ChecksumMismatch (content flips) or a typed footer error — and
        // never load successfully, and never panic.
        let mut seed = 0xb17f_11b5u64;
        for trial in 0..200 {
            seed = particles::systems::splitmix64(seed ^ trial);
            let byte = (seed as usize) % pristine.len();
            let bit = (seed >> 32) % 8;
            let mut corrupted = pristine.clone();
            corrupted[byte] ^= 1 << bit;
            if corrupted == pristine {
                continue;
            }
            std::fs::write(&path, &corrupted).unwrap();
            match Snapshot::load(&path) {
                Err(_) => {}
                // A flip confined to insignificant bytes (e.g. the trailing
                // newline turning into other whitespace) may still load —
                // but then the data must be bit-for-bit intact. Garbage
                // state must never come back.
                Ok(loaded) => assert_eq!(
                    loaded, snap,
                    "bit flip at byte {byte} bit {bit} loaded altered state"
                ),
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
