//! Particle system input/output: a plain XYZ-with-charge text format (the
//! paper's application "reads the particle system from an input file"), plus
//! full-state text snapshots for checkpoint/restart (no extra dependencies;
//! `f64` values round-trip exactly through Rust's shortest-float formatting).

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use particles::{ParticleSet, SystemBox, Vec3};

/// A complete, self-describing simulation snapshot (one rank's share or a
/// gathered world state).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The system box.
    pub bbox: SystemBox,
    /// Completed time steps.
    pub step: usize,
    /// Positions.
    pub pos: Vec<Vec3>,
    /// Charges.
    pub charge: Vec<f64>,
    /// Global particle ids.
    pub id: Vec<u64>,
    /// Velocities.
    pub vel: Vec<Vec3>,
    /// Accelerations.
    pub accel: Vec<Vec3>,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            bbox: SystemBox::cubic(1.0),
            step: 0,
            pos: Vec::new(),
            charge: Vec::new(),
            id: Vec::new(),
            vel: Vec::new(),
            accel: Vec::new(),
        }
    }
}

impl Snapshot {
    /// Number of particles in the snapshot.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Write the snapshot to a text file:
    ///
    /// ```text
    /// snapshot <n> step <step>
    /// box <lx> <ly> <lz> periodic <px> <py> <pz>
    /// <id> <q> <x> <y> <z> <vx> <vy> <vz> <ax> <ay> <az>
    /// ...
    /// ```
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "snapshot {} step {}", self.len(), self.step)?;
        writeln!(
            w,
            "box {} {} {} periodic {} {} {}",
            self.bbox.lengths.x(),
            self.bbox.lengths.y(),
            self.bbox.lengths.z(),
            u8::from(self.bbox.periodic[0]),
            u8::from(self.bbox.periodic[1]),
            u8::from(self.bbox.periodic[2]),
        )?;
        for i in 0..self.len() {
            let (p, v, a) = (self.pos[i], self.vel[i], self.accel[i]);
            writeln!(
                w,
                "{} {} {} {} {} {} {} {} {} {} {}",
                self.id[i],
                self.charge[i],
                p.x(),
                p.y(),
                p.z(),
                v.x(),
                v.y(),
                v.z(),
                a.x(),
                a.y(),
                a.z(),
            )?;
        }
        Ok(())
    }

    /// Read a snapshot written by [`Snapshot::save`].
    pub fn load(path: &Path) -> std::io::Result<Snapshot> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut lines = f.lines();
        let head = lines.next().ok_or_else(|| bad("missing header"))??;
        let tok: Vec<&str> = head.split_whitespace().collect();
        if tok.len() != 4 || tok[0] != "snapshot" || tok[2] != "step" {
            return Err(bad("malformed snapshot header"));
        }
        let n: usize = tok[1].parse().map_err(|_| bad("bad count"))?;
        let step: usize = tok[3].parse().map_err(|_| bad("bad step"))?;
        let boxline = lines.next().ok_or_else(|| bad("missing box line"))??;
        let tok: Vec<&str> = boxline.split_whitespace().collect();
        if tok.len() != 8 || tok[0] != "box" || tok[4] != "periodic" {
            return Err(bad("malformed box line"));
        }
        let pf = |s: &str| s.parse::<f64>().map_err(|_| bad("bad number"));
        let bbox = SystemBox::new(
            Vec3::ZERO,
            Vec3::new(pf(tok[1])?, pf(tok[2])?, pf(tok[3])?),
            [tok[5] == "1", tok[6] == "1", tok[7] == "1"],
        );
        let mut snap = Snapshot {
            bbox,
            step,
            pos: Vec::with_capacity(n),
            charge: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            accel: Vec::with_capacity(n),
        };
        for _ in 0..n {
            let line = lines.next().ok_or_else(|| bad("truncated snapshot"))??;
            let tok: Vec<&str> = line.split_whitespace().collect();
            if tok.len() != 11 {
                return Err(bad("malformed snapshot particle line"));
            }
            snap.id.push(tok[0].parse().map_err(|_| bad("bad id"))?);
            snap.charge.push(pf(tok[1])?);
            snap.pos.push(Vec3::new(pf(tok[2])?, pf(tok[3])?, pf(tok[4])?));
            snap.vel.push(Vec3::new(pf(tok[5])?, pf(tok[6])?, pf(tok[7])?));
            snap.accel.push(Vec3::new(pf(tok[8])?, pf(tok[9])?, pf(tok[10])?));
        }
        Ok(snap)
    }
}

/// Write a particle set in the extended-XYZ-like text format:
///
/// ```text
/// <n>
/// box <lx> <ly> <lz> periodic <px> <py> <pz>
/// <id> <charge> <x> <y> <z>
/// ...
/// ```
pub fn write_xyzq<W: Write>(mut w: W, bbox: &SystemBox, set: &ParticleSet) -> std::io::Result<()> {
    writeln!(w, "{}", set.len())?;
    writeln!(
        w,
        "box {} {} {} periodic {} {} {}",
        bbox.lengths.x(),
        bbox.lengths.y(),
        bbox.lengths.z(),
        u8::from(bbox.periodic[0]),
        u8::from(bbox.periodic[1]),
        u8::from(bbox.periodic[2]),
    )?;
    for i in 0..set.len() {
        writeln!(
            w,
            "{} {} {} {} {}",
            set.id[i],
            set.charge[i],
            set.pos[i].x(),
            set.pos[i].y(),
            set.pos[i].z()
        )?;
    }
    Ok(())
}

/// Read a particle set written by [`write_xyzq`]. Returns the box and set.
pub fn read_xyzq<R: BufRead>(r: R) -> std::io::Result<(SystemBox, ParticleSet)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = r.lines();
    let n: usize = lines
        .next()
        .ok_or_else(|| bad("missing count line"))??
        .trim()
        .parse()
        .map_err(|_| bad("bad particle count"))?;
    let header = lines.next().ok_or_else(|| bad("missing box line"))??;
    let tok: Vec<&str> = header.split_whitespace().collect();
    if tok.len() != 8 || tok[0] != "box" || tok[4] != "periodic" {
        return Err(bad("malformed box line"));
    }
    let parse_f = |s: &str| s.parse::<f64>().map_err(|_| bad("bad box number"));
    let lengths = Vec3::new(parse_f(tok[1])?, parse_f(tok[2])?, parse_f(tok[3])?);
    let mut periodic = [false; 3];
    for d in 0..3 {
        periodic[d] = tok[5 + d] == "1";
    }
    let bbox = SystemBox::new(Vec3::ZERO, lengths, periodic);
    let mut set = ParticleSet::with_capacity(n);
    for _ in 0..n {
        let line = lines.next().ok_or_else(|| bad("truncated particle data"))??;
        let tok: Vec<&str> = line.split_whitespace().collect();
        if tok.len() != 5 {
            return Err(bad("malformed particle line"));
        }
        let id: u64 = tok[0].parse().map_err(|_| bad("bad id"))?;
        let q = parse_f(tok[1])?;
        set.push(Vec3::new(parse_f(tok[2])?, parse_f(tok[3])?, parse_f(tok[4])?), q, id);
    }
    Ok((bbox, set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use particles::IonicCrystal;

    fn sample_set() -> (SystemBox, ParticleSet) {
        let c = IonicCrystal::cubic(3, 1.5, 0.2, 4);
        let bbox = c.system_box();
        let mut set = ParticleSet::default();
        for i in 0..c.n() as u64 {
            let (x, q) = c.particle(i);
            set.push(x, q, i);
        }
        (bbox, set)
    }

    #[test]
    fn xyzq_roundtrip() {
        let (bbox, set) = sample_set();
        let mut buf = Vec::new();
        write_xyzq(&mut buf, &bbox, &set).unwrap();
        let (bbox2, set2) = read_xyzq(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(bbox2.lengths, bbox.lengths);
        assert_eq!(bbox2.periodic, bbox.periodic);
        assert_eq!(set2.len(), set.len());
        for i in 0..set.len() {
            assert_eq!(set2.id[i], set.id[i]);
            assert_eq!(set2.charge[i], set.charge[i]);
            assert!((set2.pos[i] - set.pos[i]).norm() < 1e-12);
        }
    }

    #[test]
    fn xyzq_rejects_malformed_input() {
        assert!(read_xyzq(std::io::Cursor::new(b"not a number\n".as_slice())).is_err());
        assert!(read_xyzq(std::io::Cursor::new(b"2\nnobox 1 2 3\n".as_slice())).is_err());
        assert!(
            read_xyzq(std::io::Cursor::new(
                b"2\nbox 1 1 1 periodic 1 1 1\n0 1.0 0.1 0.1 0.1\n".as_slice()
            ))
            .is_err(),
            "truncated particle data must be rejected"
        );
        assert!(
            read_xyzq(std::io::Cursor::new(
                b"1\nbox 1 1 1 periodic 1 1 1\n0 1.0 0.1 0.1\n".as_slice()
            ))
            .is_err(),
            "short particle line must be rejected"
        );
    }

    #[test]
    fn snapshot_roundtrip_via_file() {
        let (bbox, set) = sample_set();
        let n = set.len();
        let snap = Snapshot {
            bbox,
            step: 42,
            pos: set.pos.clone(),
            charge: set.charge.clone(),
            id: set.id.clone(),
            vel: vec![Vec3::new(0.1, -0.2, 0.3); n],
            accel: vec![Vec3::ZERO; n],
        };
        let dir = std::env::temp_dir().join("cpr_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }
}
