//! # psort — parallel sorting for particle redistribution
//!
//! The two parallel sorting algorithms the paper's FMM solver switches
//! between (Sect. III):
//!
//! * [`partition_sort_by_key`] — **partition-based** (Hofmann/Rünger,
//!   HPCC'11): splitter selection by global histogramming followed by a
//!   collective all-to-all exchange and a local multiway merge. Used for
//!   *unsorted* data; produces balanced per-rank counts.
//! * [`merge_exchange_sort_by_key`] — **merge-based** (Dachsel/Hofmann/
//!   Rünger, Euro-Par'07): local sort plus pairwise compare-split steps along
//!   Batcher's merge-exchange network, using only point-to-point
//!   communication with an early-exit boundary probe. Used for *almost
//!   sorted* data (particles that moved only slightly since the last time
//!   step); preserves per-rank counts.
//!
//! The FMM solver picks between them with the paper's maximum-movement
//! heuristic (see the `fcs` and `fmm` crates): merge-based iff the maximum
//! particle movement is below the side length of a per-process cube of the
//! system volume.
//!
//! Both sorts operate on `u64` keys with an arbitrary `Copy` payload; for the
//! FMM the key is the Z-Morton box number and the payload a particle record.

#![warn(missing_docs)]

mod local;
mod merge;
mod network;
mod partition;

pub use local::{bucket_bounds, is_sorted, kway_merge, radix_sort_by_key};
pub use merge::{
    is_globally_sorted, merge_exchange_sort_by_key, merge_exchange_sort_by_key_capped,
    merge_exchange_sort_by_key_planned, MergeSortReport, SortPlan,
};
pub use network::{merge_exchange_comparators, merge_exchange_rounds};
pub use partition::{partition_sort_by_key, PartitionSortReport};
