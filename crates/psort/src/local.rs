//! Local (per-rank) sorting kernels: an LSD radix sort for `u64` keys with an
//! attached payload permutation, and a k-way merge of sorted runs.

/// Sort `keys` ascending and apply the same permutation to `values`.
/// Uses an 8-bit LSD radix sort (8 passes over `u64` keys), skipping passes
/// whose digit is constant — for almost-sorted or small-range keys this makes
/// the sort close to linear.
///
/// Returns the number of counting passes actually performed (useful for work
/// accounting).
pub fn radix_sort_by_key<T: Copy>(keys: &mut Vec<u64>, values: &mut Vec<T>) -> u32 {
    assert_eq!(keys.len(), values.len());
    let n = keys.len();
    if n <= 1 {
        return 0;
    }
    let mut passes = 0;
    let mut k_src = std::mem::take(keys);
    let mut v_src = std::mem::take(values);
    let mut k_dst = vec![0u64; n];
    let mut v_dst = v_src.clone();
    for shift in (0..64).step_by(8) {
        let mut counts = [0usize; 256];
        for &k in &k_src {
            counts[((k >> shift) & 0xff) as usize] += 1;
        }
        // Skip passes where all keys share the digit.
        if counts.contains(&n) {
            continue;
        }
        passes += 1;
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for d in 0..256 {
            offsets[d] = acc;
            acc += counts[d];
        }
        for (i, &k) in k_src.iter().enumerate() {
            let d = ((k >> shift) & 0xff) as usize;
            k_dst[offsets[d]] = k;
            v_dst[offsets[d]] = v_src[i];
            offsets[d] += 1;
        }
        std::mem::swap(&mut k_src, &mut k_dst);
        std::mem::swap(&mut v_src, &mut v_dst);
    }
    *keys = k_src;
    *values = v_src;
    passes
}

/// Merge `runs` of (individually sorted) key/value pairs into one sorted pair
/// of vectors. Stable across runs: ties preserve run order.
pub fn kway_merge<T: Copy>(runs: Vec<(Vec<u64>, Vec<T>)>) -> (Vec<u64>, Vec<T>) {
    let total: usize = runs.iter().map(|(k, _)| k.len()).sum();
    let mut out_k = Vec::with_capacity(total);
    let mut out_v = Vec::with_capacity(total);
    // Simple loser-tree-free approach: repeatedly pick the run with the
    // smallest head. For the small run counts of a rank (typically <= P) a
    // linear scan with a heap is enough; use a binary heap keyed by
    // (key, run index) for O(total log runs).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut cursors = vec![0usize; runs.len()];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (r, (k, _)) in runs.iter().enumerate() {
        if !k.is_empty() {
            heap.push(Reverse((k[0], r)));
        }
    }
    while let Some(Reverse((key, r))) = heap.pop() {
        let c = cursors[r];
        out_k.push(key);
        out_v.push(runs[r].1[c]);
        cursors[r] += 1;
        if cursors[r] < runs[r].0.len() {
            heap.push(Reverse((runs[r].0[cursors[r]], r)));
        }
    }
    (out_k, out_v)
}

/// Is the slice sorted ascending?
pub fn is_sorted(keys: &[u64]) -> bool {
    keys.windows(2).all(|w| w[0] <= w[1])
}

/// Split a sorted `keys` slice at `splitters` (ascending): returns the start
/// index of each of the `splitters.len() + 1` buckets, where bucket `i`
/// contains keys in `[splitters[i-1], splitters[i])`.
pub fn bucket_bounds(keys: &[u64], splitters: &[u64]) -> Vec<usize> {
    debug_assert!(is_sorted(keys));
    let mut bounds = Vec::with_capacity(splitters.len() + 1);
    bounds.push(0);
    for &s in splitters {
        bounds.push(keys.partition_point(|&k| k < s));
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sorts_random() {
        let mut keys: Vec<u64> = (0..1000).map(|i| (i * 2654435761u64) ^ (i << 32)).collect();
        let mut vals: Vec<u64> = keys.clone();
        radix_sort_by_key(&mut keys, &mut vals);
        assert!(is_sorted(&keys));
        assert_eq!(keys, vals, "payload must follow keys");
    }

    #[test]
    fn radix_handles_trivial_inputs() {
        let mut k: Vec<u64> = vec![];
        let mut v: Vec<u8> = vec![];
        assert_eq!(radix_sort_by_key(&mut k, &mut v), 0);
        let mut k = vec![7u64];
        let mut v = vec![1u8];
        assert_eq!(radix_sort_by_key(&mut k, &mut v), 0);
        assert_eq!(k, vec![7]);
    }

    #[test]
    fn radix_skips_constant_digits() {
        // Keys within one byte: only one pass needed.
        let mut k: Vec<u64> = (0..256u64).rev().collect();
        let mut v: Vec<u64> = k.clone();
        let passes = radix_sort_by_key(&mut k, &mut v);
        assert_eq!(passes, 1);
        assert!(is_sorted(&k));
    }

    #[test]
    fn radix_is_stable_like_for_payloads() {
        // Equal keys: payload order preserved (LSD radix is stable).
        let mut k = vec![5u64, 3, 5, 3, 5];
        let mut v = vec![0u32, 1, 2, 3, 4];
        radix_sort_by_key(&mut k, &mut v);
        assert_eq!(k, vec![3, 3, 5, 5, 5]);
        assert_eq!(v, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn kway_merge_merges() {
        let runs = vec![
            (vec![1u64, 4, 9], vec![10u32, 40, 90]),
            (vec![2, 3, 11], vec![20, 30, 110]),
            (vec![], vec![]),
            (vec![5], vec![50]),
        ];
        let (k, v) = kway_merge(runs);
        assert_eq!(k, vec![1, 2, 3, 4, 5, 9, 11]);
        assert_eq!(v, vec![10, 20, 30, 40, 50, 90, 110]);
    }

    #[test]
    fn bucket_bounds_partition_correctly() {
        let keys = [1u64, 3, 5, 5, 8, 13];
        let bounds = bucket_bounds(&keys, &[5, 9]);
        assert_eq!(bounds, vec![0, 2, 5]);
        // bucket 0: [1,3), keys < 5 -> indices 0..2
        // bucket 1: 5 <= k < 9 -> indices 2..5
        // bucket 2: k >= 9 -> indices 5..6
    }

    #[test]
    fn bucket_bounds_empty_and_extreme_splitters() {
        let keys = [10u64, 20, 30];
        assert_eq!(bucket_bounds(&keys, &[]), vec![0]);
        assert_eq!(bucket_bounds(&keys, &[0, 100]), vec![0, 0, 3]);
        let empty: [u64; 0] = [];
        assert_eq!(bucket_bounds(&empty, &[5]), vec![0, 0]);
    }
}
