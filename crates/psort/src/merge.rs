//! Merge-based parallel sorting (Dachsel/Hofmann/Rünger, Euro-Par'07), used by
//! the FMM solver for *almost sorted* particle data — paper Sect. III-B.
//!
//! Structure: local sort, then pairwise **compare-split** steps between ranks
//! following Batcher's merge-exchange network, using only point-to-point
//! communication. Each compare-split first probes the pair's boundary keys
//! (16 bytes each way); if the two runs are already ordered — the common case
//! for almost-sorted data — the full exchange is skipped. This is what makes
//! the method cheap when particles moved only slightly since the last sort.
//!
//! Block compare-split is only guaranteed to sort by the 0-1 principle when
//! all blocks have equal size; with the (slightly) unequal counts a particle
//! simulation produces, a few odd-even transposition cleanup rounds run until
//! a global sortedness check passes. For almost-sorted data, zero cleanup
//! rounds are needed in practice.

use simcomm::{Comm, Work};

use crate::local::{is_sorted, radix_sort_by_key};
use crate::network::merge_exchange_rounds;

/// Report of one merge-based parallel sort execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MergeSortReport {
    /// Compare-split steps this rank participated in.
    pub comparators: u64,
    /// Steps skipped after the boundary probe (runs already ordered).
    pub probes_skipped: u64,
    /// Full data exchanges performed.
    pub exchanges: u64,
    /// Elements shipped to the partner across all exchanges.
    pub sent_elems: u64,
    /// Odd-even transposition cleanup rounds after the network.
    pub cleanup_rounds: u64,
    /// Network rounds skipped outright (not even probed) because a cached
    /// [`SortPlan`] proved them quiet on the previous execution.
    pub rounds_plan_skipped: u64,
    /// `true` if the sort gave up before reaching global sortedness because
    /// the caller's cleanup-round cap was hit (see
    /// [`merge_exchange_sort_by_key_capped`]). The per-rank data is still
    /// locally sorted with counts preserved, but the *global* order is not
    /// guaranteed — the caller must fall back to a general sort.
    pub cleanup_cap_hit: bool,
}

/// A cached probe schedule for the merge-exchange network: which of this
/// rank's comparator rounds ended without a data exchange on the previous
/// sort. Re-executing with a plan skips those rounds outright — not even the
/// 16-byte boundary probe is sent — which removes most of the per-round
/// latency for almost-sorted data.
///
/// Safety of the skip rests on two facts. First, both partners of a
/// comparator compute the *same* probe outcome (ordered iff `low.max <=
/// high.min` over the identical probe pair), so the recorded quiet set is
/// symmetric and skipping never leaves a partner waiting. Second, the sort's
/// cleanup phase re-checks global sortedness collectively, so a stale skip
/// costs extra cleanup rounds, never correctness — and a sort that *needed*
/// cleanup returns no plan, forcing the next execution to probe afresh.
///
/// All ranks must agree on whether a plan is passed (the caller gates on
/// globally consistent state, e.g. the movement heuristic); a plan is only
/// valid for the world size it was recorded on.
#[derive(Clone, Debug)]
pub struct SortPlan {
    /// World size the plan was recorded for.
    p: usize,
    /// Per network round: `true` if this rank had no comparator or its
    /// compare-split ended without an exchange.
    quiet_rounds: Vec<bool>,
}

impl SortPlan {
    /// World size this plan was recorded for.
    pub fn world_size(&self) -> usize {
        self.p
    }

    /// Network rounds this plan would skip on re-execution.
    pub fn quiet_round_count(&self) -> usize {
        self.quiet_rounds.iter().filter(|&&q| q).count()
    }
}

/// Planning mode of one merge-sort execution (internal).
enum Planning<'a> {
    /// No plan recording or consumption (the plain entry point).
    Off,
    /// Record a plan; consume the given one first if present and valid.
    On(Option<&'a SortPlan>),
}

/// Message tags (distinct from any user tags in the same phase).
const TAG_PROBE: u64 = 0x6d65_7267_6531; // "merge1"
const TAG_DATA: u64 = 0x6d65_7267_6532;

/// Compare-split between this rank and `partner`: the lower-numbered rank of
/// the pair keeps the smallest `n_low` elements of the union, the higher one
/// the largest `n_high`, where `n_low`/`n_high` are the entry counts.
/// `keys` must be locally sorted. Returns `true` if a full exchange happened.
fn compare_split<T: Copy + Send + 'static>(
    comm: &mut Comm,
    partner: usize,
    keys: &mut Vec<u64>,
    values: &mut Vec<T>,
    report: &mut MergeSortReport,
) -> bool {
    debug_assert!(is_sorted(keys));
    let i_am_low = comm.rank() < partner;
    report.comparators += 1;

    // Boundary probe: low side sends its max, high side its min, plus an
    // emptiness flag. If either run is empty the compare-split is a no-op
    // (counts are preserved, so the empty side keeps zero elements and the
    // other side keeps everything, whatever the order); otherwise the pair is
    // already ordered iff low.max <= high.min.
    let my_probe: u64 = if i_am_low {
        keys.last().copied().unwrap_or(u64::MAX)
    } else {
        keys.first().copied().unwrap_or(0)
    };
    let (p_key, p_empty) = {
        // Post the receive first, then the send; both directions of the probe
        // are in flight at once and complete in arrival order.
        let rx = comm.irecv::<(u64, bool)>(partner, TAG_PROBE);
        let tx = comm.isend(partner, TAG_PROBE, vec![(my_probe, keys.is_empty())]);
        let mut got = comm.waitall(vec![rx, tx]);
        let probe = got.swap_remove(0).expect("probe receive yields data");
        debug_assert_eq!(probe.len(), 1);
        probe[0]
    };
    let ordered = if i_am_low { my_probe <= p_key } else { p_key <= my_probe };
    if keys.is_empty() || p_empty || ordered {
        report.probes_skipped += 1;
        return false;
    }

    // Full exchange: ship our run, receive the partner's, merge, keep our
    // part. The receive is posted before we pack so the partner's transfer is
    // in flight during the pack; the merge below then overlaps with our own
    // payload draining on the NIC (the send request is waited on last).
    let n_mine = keys.len();
    let rx = comm.irecv::<(u64, T)>(partner, TAG_DATA);
    report.exchanges += 1;
    report.sent_elems += n_mine as u64;
    comm.compute(Work::ByteCopy, (n_mine * std::mem::size_of::<(u64, T)>()) as f64);
    let outgoing: Vec<(u64, T)> = keys.iter().copied().zip(values.iter().copied()).collect();
    let tx = comm.isend(partner, TAG_DATA, outgoing);
    let incoming = comm.wait_recv(rx);

    // Deterministic stable merge: on equal keys the lower rank's elements come
    // first, so both sides compute the identical union order.
    let (a_keys, a_vals, b_keys, b_vals): (&[u64], &[T], Vec<u64>, Vec<T>) = {
        let (ik, iv): (Vec<u64>, Vec<T>) = incoming.into_iter().unzip();
        (keys, values, ik, iv)
    };
    let total = a_keys.len() + b_keys.len();
    let mut merged_k = Vec::with_capacity(total);
    let mut merged_v = Vec::with_capacity(total);
    {
        // "low" rank's data must precede on ties.
        let (lo_k, lo_v, hi_k, hi_v): (&[u64], &[T], &[u64], &[T]) = if i_am_low {
            (a_keys, a_vals, &b_keys, &b_vals)
        } else {
            (&b_keys, &b_vals, a_keys, a_vals)
        };
        let (mut x, mut y) = (0, 0);
        while x < lo_k.len() && y < hi_k.len() {
            if lo_k[x] <= hi_k[y] {
                merged_k.push(lo_k[x]);
                merged_v.push(lo_v[x]);
                x += 1;
            } else {
                merged_k.push(hi_k[y]);
                merged_v.push(hi_v[y]);
                y += 1;
            }
        }
        merged_k.extend_from_slice(&lo_k[x..]);
        merged_v.extend_from_slice(&lo_v[x..]);
        merged_k.extend_from_slice(&hi_k[y..]);
        merged_v.extend_from_slice(&hi_v[y..]);
    }
    comm.compute(Work::SortCmp, total as f64);
    // The local merge above ran while our payload drained; by now the send
    // has normally departed and this completes without stalling.
    let _ = comm.wait(tx);

    // Keep entry count: low side the first n_mine, high side the last n_mine.
    if i_am_low {
        merged_k.truncate(n_mine);
        merged_v.truncate(n_mine);
        *keys = merged_k;
        *values = merged_v;
    } else {
        *keys = merged_k.split_off(total - n_mine);
        *values = merged_v.split_off(total - n_mine);
    }
    true
}

/// Is the distributed array (locally sorted `keys` per rank, concatenated in
/// rank order) globally sorted? Collective.
pub fn is_globally_sorted(comm: &mut Comm, keys: &[u64]) -> bool {
    let local_ok = is_sorted(keys);
    let boundary = (local_ok, keys.first().copied(), keys.last().copied());
    let all = comm.allgather(boundary);
    let mut prev_last: Option<u64> = None;
    for (ok, first, last) in all {
        if !ok {
            return false;
        }
        if let (Some(pl), Some(f)) = (prev_last, first) {
            if pl > f {
                return false;
            }
        }
        if last.is_some() {
            prev_last = last;
        }
    }
    true
}

/// Merge-based parallel sort: local sort plus Batcher merge-exchange rounds of
/// pairwise compare-split, followed by odd-even transposition cleanup rounds
/// until a global sortedness check passes (needed because per-rank counts may
/// be unequal). Per-rank element counts are preserved exactly.
///
/// This is a synchronizing collective operation: all ranks must call it.
pub fn merge_exchange_sort_by_key<T>(
    comm: &mut Comm,
    keys: Vec<u64>,
    values: Vec<T>,
) -> (Vec<u64>, Vec<T>, MergeSortReport)
where
    T: Copy + Send + 'static,
{
    let (k, v, report, _) = merge_sort_impl(comm, keys, values, Planning::Off, u64::MAX);
    (k, v, report)
}

/// Plan-aware variant of [`merge_exchange_sort_by_key`]: consumes an optional
/// [`SortPlan`] recorded by a previous execution (skipping the network rounds
/// it proved quiet) and returns the plan for the *next* execution — or `None`
/// when this sort needed cleanup rounds, which invalidates the recorded
/// schedule.
///
/// All ranks must pass a plan from the same previous execution (or all pass
/// `None`); like the sort itself this is a synchronizing collective.
pub fn merge_exchange_sort_by_key_planned<T>(
    comm: &mut Comm,
    keys: Vec<u64>,
    values: Vec<T>,
    plan: Option<&SortPlan>,
) -> (Vec<u64>, Vec<T>, MergeSortReport, Option<SortPlan>)
where
    T: Copy + Send + 'static,
{
    merge_sort_impl(comm, keys, values, Planning::On(plan), u64::MAX)
}

/// Movement-bound-guarded variant of [`merge_exchange_sort_by_key_planned`]:
/// identical, except the odd-even transposition cleanup phase runs at most
/// `max_cleanup_rounds` rounds. The merge-exchange network is only cheap when
/// the data is *almost* sorted; if a movement hint under-reported the real
/// displacement, cleanup can degenerate into a full O(p)-round transposition
/// sort. Capping it bounds the damage: when the cap is hit the sort stops with
/// [`MergeSortReport::cleanup_cap_hit`] set (and no [`SortPlan`]), leaving
/// each rank's data locally sorted with counts preserved — *not* globally
/// sorted — so the caller can fall back to a general partition sort.
///
/// The cap decision is collective: `cleanup_rounds` advances identically on
/// every rank (the sortedness check is an allgather), so either all ranks hit
/// the cap or none do. Passing `u64::MAX` makes this function bit-for-bit
/// identical to [`merge_exchange_sort_by_key_planned`].
pub fn merge_exchange_sort_by_key_capped<T>(
    comm: &mut Comm,
    keys: Vec<u64>,
    values: Vec<T>,
    plan: Option<&SortPlan>,
    max_cleanup_rounds: u64,
) -> (Vec<u64>, Vec<T>, MergeSortReport, Option<SortPlan>)
where
    T: Copy + Send + 'static,
{
    merge_sort_impl(comm, keys, values, Planning::On(plan), max_cleanup_rounds)
}

fn merge_sort_impl<T>(
    comm: &mut Comm,
    keys: Vec<u64>,
    values: Vec<T>,
    planning: Planning<'_>,
    max_cleanup_rounds: u64,
) -> (Vec<u64>, Vec<T>, MergeSortReport, Option<SortPlan>)
where
    T: Copy + Send + 'static,
{
    assert_eq!(keys.len(), values.len());
    let p = comm.size();
    let mut keys = keys;
    let mut values = values;
    let mut report = MergeSortReport::default();

    comm.enter_phase("sort:local");
    let passes = radix_sort_by_key(&mut keys, &mut values);
    comm.compute(Work::SortCmp, (passes as f64) * keys.len() as f64);
    comm.exit_phase();

    if p == 1 {
        return (keys, values, report, None);
    }

    // --- Batcher merge-exchange network over ranks ---
    comm.enter_phase("sort:merge-rounds");
    let rounds = merge_exchange_rounds(p);
    let me = comm.rank();
    let (record, prior) = match planning {
        Planning::Off => (false, None),
        // A plan for a different world size cannot be consumed (the round
        // structure differs); `p` is global, so all ranks reject it together.
        Planning::On(pl) => {
            (true, pl.filter(|pl| pl.p == p && pl.quiet_rounds.len() == rounds.len()))
        }
    };
    let t_rounds = comm.clock();
    let mut quiet_rounds = vec![true; rounds.len()];
    for (ri, round) in rounds.iter().enumerate() {
        if prior.is_some_and(|pl| pl.quiet_rounds[ri]) {
            // The previous execution proved this round quiet on both sides of
            // every comparator touching this rank; skip even the probe.
            report.rounds_plan_skipped += 1;
            continue;
        }
        // At most one comparator involves this rank per round.
        let mine = round.iter().find(|&&(a, b)| a == me || b == me);
        if let Some(&(a, b)) = mine {
            let partner = if a == me { b } else { a };
            if compare_split(comm, partner, &mut keys, &mut values, &mut report) {
                quiet_rounds[ri] = false;
            }
        }
        // Ranks without a comparator this round simply proceed; point-to-point
        // messages are matched by tag, so no global synchronization is needed.
    }
    if prior.is_some() {
        // Probe bytes the plan saved: 16 bytes each way per skipped round.
        comm.note_plan_exec(t_rounds, report.rounds_plan_skipped * 32);
    }
    comm.exit_phase();

    // --- Cleanup: odd-even transposition until globally sorted ---
    comm.enter_phase("sort:cleanup");
    // Compare-split preserves per-rank counts, so an *empty* rank is a wall
    // the transposition cannot move data through; run the transposition over
    // the compacted sequence of non-empty ranks instead (empty ranks only
    // take part in the collective sortedness checks and barriers).
    let counts = comm.allgather(keys.len());
    let nonempty: Vec<usize> = (0..p).filter(|&r| counts[r] > 0).collect();
    let my_slot = nonempty.iter().position(|&r| r == me);
    loop {
        if is_globally_sorted(comm, &keys) {
            break;
        }
        if report.cleanup_rounds >= max_cleanup_rounds {
            // Collective by construction: every rank counts the same rounds.
            report.cleanup_cap_hit = true;
            break;
        }
        report.cleanup_rounds += 1;
        // One even phase (slot pairs (0,1),(2,3),...) and one odd phase
        // (pairs (1,2),(3,4),...) per cleanup round, over non-empty slots.
        for phase in 0..2usize {
            if let Some(slot) = my_slot {
                let partner_slot = if slot % 2 == phase {
                    Some(slot + 1).filter(|&q| q < nonempty.len())
                } else {
                    slot.checked_sub(1)
                };
                if let Some(ps) = partner_slot {
                    compare_split(comm, nonempty[ps], &mut keys, &mut values, &mut report);
                }
            }
            comm.barrier();
        }
    }
    comm.exit_phase();

    // A sort that needed cleanup ran comparators outside the recorded network
    // outcomes — its quiet set is unreliable, so no plan is returned and the
    // next execution probes every round afresh.
    let next_plan = if record && report.cleanup_rounds == 0 && !report.cleanup_cap_hit {
        if prior.is_none() {
            comm.note_plan_build(comm.clock(), quiet_rounds.len() as u64);
        }
        Some(SortPlan { p, quiet_rounds })
    } else {
        None
    };

    (keys, values, report, next_plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcomm::{run, MachineModel};

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn check_global_sort(p: usize, local_data: impl Fn(usize) -> Vec<u64> + Send + Sync) {
        let counts: Vec<usize> = (0..p).map(|r| local_data(r).len()).collect();
        let out = run(p, MachineModel::ideal(), |comm| {
            let keys = local_data(comm.rank());
            let values: Vec<u64> = keys.iter().map(|k| k ^ 0x5555).collect();
            let (k, v, rep) = merge_exchange_sort_by_key(comm, keys, values);
            (k, v, rep)
        });
        let mut all_in: Vec<u64> = (0..p).flat_map(&local_data).collect();
        let mut prev_last: Option<u64> = None;
        let mut all_out = Vec::new();
        for (r, (k, v, _)) in out.results.iter().enumerate() {
            assert_eq!(k.len(), counts[r], "counts must be preserved");
            assert!(k.windows(2).all(|w| w[0] <= w[1]));
            for (key, val) in k.iter().zip(v) {
                assert_eq!(*val, *key ^ 0x5555);
            }
            if let (Some(pl), Some(&f)) = (prev_last, k.first()) {
                assert!(pl <= f, "rank boundary out of order");
            }
            if let Some(&l) = k.last() {
                prev_last = Some(l);
            }
            all_out.extend_from_slice(k);
        }
        all_in.sort_unstable();
        let mut sorted_out = all_out;
        sorted_out.sort_unstable();
        assert_eq!(all_in, sorted_out);
    }

    #[test]
    fn sorts_random_equal_blocks() {
        check_global_sort(8, |r| (0..128).map(|i| splitmix((r * 128 + i) as u64)).collect());
    }

    #[test]
    fn sorts_random_unequal_blocks() {
        check_global_sort(5, |r| {
            (0..64 + r * 17).map(|i| splitmix((r * 997 + i) as u64)).collect()
        });
    }

    #[test]
    fn empty_rank_between_unsorted_neighbours_terminates() {
        // Regression: an empty rank is a wall for count-preserving
        // compare-split; the cleanup transposition must skip over it instead
        // of livelocking. Keys chosen so the Batcher network leaves the two
        // outer ranks out of order relative to each other.
        check_global_sort(3, |r| match r {
            0 => vec![9, 10, 11],
            1 => Vec::new(),
            _ => vec![1, 2, 3],
        });
        // Several empties and duplicates.
        check_global_sort(5, |r| match r {
            0 => vec![7, 7, 8],
            2 => vec![7],
            4 => vec![0, 7],
            _ => Vec::new(),
        });
    }

    #[test]
    fn sorts_with_empty_ranks() {
        check_global_sort(6, |r| {
            if r == 2 || r == 3 {
                Vec::new()
            } else {
                (0..100).map(|i| splitmix((r * 7919 + i) as u64)).collect()
            }
        });
    }

    #[test]
    fn sorts_non_power_of_two_worlds() {
        for p in [3usize, 5, 7, 12] {
            check_global_sort(p, |r| (0..50).map(|i| splitmix((r * 131 + i) as u64)).collect());
        }
    }

    #[test]
    fn sorts_duplicates() {
        check_global_sort(4, |r| (0..100).map(|i| ((r * 100 + i) % 7) as u64).collect());
    }

    #[test]
    fn almost_sorted_data_skips_most_exchanges() {
        let p = 16;
        let per = 64u64;
        let out = run(p, MachineModel::ideal(), move |comm| {
            // Each rank holds its own contiguous key range except one element
            // swapped with the neighbouring rank (simulating slight movement).
            let base = comm.rank() as u64 * per;
            let mut keys: Vec<u64> = (base..base + per).collect();
            if comm.rank() + 1 < p {
                keys[per as usize - 1] = base + per; // belongs to the right neighbour
            }
            let values = keys.clone();
            let (k, _, rep) = merge_exchange_sort_by_key(comm, keys, values);
            (k, rep)
        });
        let mut total_exchanges = 0;
        let mut total_comparators = 0;
        let mut prev_last: Option<u64> = None;
        for (k, rep) in &out.results {
            assert!(k.windows(2).all(|w| w[0] <= w[1]));
            if let (Some(pl), Some(&f)) = (prev_last, k.first()) {
                assert!(pl <= f);
            }
            prev_last = k.last().copied();
            total_exchanges += rep.exchanges;
            total_comparators += rep.comparators;
        }
        assert!(
            total_exchanges * 3 < total_comparators,
            "almost-sorted data should skip most exchanges: {total_exchanges}/{total_comparators}"
        );
    }

    #[test]
    fn perfectly_sorted_data_exchanges_nothing() {
        let p = 8;
        let out = run(p, MachineModel::ideal(), move |comm| {
            let base = comm.rank() as u64 * 100;
            let keys: Vec<u64> = (base..base + 100).collect();
            let values = keys.clone();
            let (_, _, rep) = merge_exchange_sort_by_key(comm, keys, values);
            rep
        });
        for rep in &out.results {
            assert_eq!(rep.exchanges, 0);
            assert_eq!(rep.cleanup_rounds, 0);
        }
    }

    #[test]
    fn planned_rerun_skips_quiet_rounds_and_matches_fresh_sort() {
        let p = 16;
        let per = 64u64;
        let data = move |me: usize| -> (Vec<u64>, Vec<u64>) {
            // Almost sorted: one element swapped with the right neighbour.
            let base = me as u64 * per;
            let mut keys: Vec<u64> = (base..base + per).collect();
            if me + 1 < p {
                keys[per as usize - 1] = base + per;
            }
            let values = keys.clone();
            (keys, values)
        };
        let out = run(p, MachineModel::juqueen_like(), move |comm| {
            let me = comm.rank();
            let (keys, values) = data(me);
            let (k1, v1, rep1, plan) = merge_exchange_sort_by_key_planned(comm, keys, values, None);
            let plan = plan.expect("clean sort must return a plan");
            assert_eq!(rep1.rounds_plan_skipped, 0);
            let t_fresh = comm.clock();

            // Same input again, with the plan: the quiet rounds are skipped
            // outright and the result is identical to the fresh sort.
            let (keys, values) = data(me);
            let (k2, v2, rep2, plan2) =
                merge_exchange_sort_by_key_planned(comm, keys, values, Some(&plan));
            let t_planned = comm.clock() - t_fresh;
            assert_eq!(k1, k2);
            assert_eq!(v1, v2);
            assert!(plan2.is_some());
            assert_eq!(
                rep2.rounds_plan_skipped as usize,
                plan.quiet_round_count(),
                "every quiet round must be skipped"
            );
            assert_eq!(rep2.cleanup_rounds, 0);
            (rep1, rep2, t_fresh, t_planned, comm.stats().plan_builds, comm.stats().plan_execs)
        });
        for (rep1, rep2, _, _, builds, execs) in &out.results {
            // Almost-sorted data leaves most comparators quiet, so the plan
            // must remove most of the probing the fresh sort paid.
            assert!(rep2.rounds_plan_skipped > 0);
            assert!(rep2.comparators < rep1.comparators);
            assert_eq!((*builds, *execs), (1, 1), "one plan build, one planned exec");
        }
        // The planned re-execution must not be slower in virtual time.
        let fresh: f64 = out.results.iter().map(|r| r.2).fold(0.0, f64::max);
        let planned: f64 = out.results.iter().map(|r| r.3).fold(0.0, f64::max);
        assert!(planned <= fresh, "planned rerun slower than fresh sort: {planned} vs {fresh}");
    }

    #[test]
    fn sort_needing_cleanup_returns_no_plan() {
        // Unequal block sizes with adversarial keys force cleanup rounds; the
        // execution must refuse to record a plan.
        let out = run(5, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let n = 40 + me * 23;
            let keys: Vec<u64> = (0..n).map(|i| splitmix((me * 7919 + i) as u64)).collect();
            let values = keys.clone();
            let (k, _, rep, plan) = merge_exchange_sort_by_key_planned(comm, keys, values, None);
            assert!(is_sorted(&k));
            (rep.cleanup_rounds, plan.is_some())
        });
        let cleanup = out.results[0].0;
        for &(rounds, has_plan) in &out.results {
            assert_eq!(rounds, cleanup, "cleanup rounds are collective");
            assert_eq!(has_plan, rounds == 0, "plan returned iff no cleanup was needed");
        }
    }

    #[test]
    fn plan_for_wrong_world_size_is_ignored() {
        let stale = SortPlan { p: 4, quiet_rounds: vec![true; 3] };
        let out = run(8, MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let keys: Vec<u64> = (0..64).map(|i| splitmix((me * 131 + i) as u64)).collect();
            let values = keys.clone();
            let (k, _, rep, _) =
                merge_exchange_sort_by_key_planned(comm, keys, values, Some(&stale));
            assert!(is_sorted(&k));
            rep.rounds_plan_skipped
        });
        for &skipped in &out.results {
            assert_eq!(skipped, 0, "a plan for another world size must not skip anything");
        }
    }

    #[test]
    fn capped_sort_with_max_cap_matches_planned_exactly() {
        let out = run(6, MachineModel::juropa_like(), |comm| {
            let me = comm.rank();
            let mk = || {
                let keys: Vec<u64> =
                    (0..50 + me * 13).map(|i| splitmix((me * 131 + i) as u64)).collect();
                let values = keys.clone();
                (keys, values)
            };
            let (keys, values) = mk();
            let (k1, v1, rep1, _) = merge_exchange_sort_by_key_planned(comm, keys, values, None);
            let t1 = comm.clock();
            let (keys, values) = mk();
            let (k2, v2, rep2, _) =
                merge_exchange_sort_by_key_capped(comm, keys, values, None, u64::MAX);
            let t2 = comm.clock() - t1;
            assert_eq!((k1, v1, rep1), (k2, v2, rep2.clone()));
            assert!(!rep2.cleanup_cap_hit);
            (t1, t2)
        });
        for &(t1, t2) in &out.results {
            assert!((t1 - t2).abs() < 1e-12, "uncapped cap must not change timing");
        }
    }

    #[test]
    fn capped_sort_gives_up_collectively_and_preserves_counts() {
        // Adversarial: one rank holds almost everything, in reverse of the
        // global order, while the others hold single small keys. The Batcher
        // network's count-preserving compare-splits cannot fix this in one
        // transposition round (this input needs two), so a cap of 1 must stop
        // the sort on every rank in the same round, flag it, preserve local
        // sortedness and counts, and refuse to record a plan.
        let p = 6;
        let counts: Vec<usize> = (0..p).map(|r| if r == 0 { 300 } else { 1 }).collect();
        let out = run(p, MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let keys: Vec<u64> =
                if me == 0 { (0..300u64).map(|i| u64::MAX - i).collect() } else { vec![me as u64] };
            let values = keys.clone();
            let (k, _, rep, plan) = merge_exchange_sort_by_key_capped(comm, keys, values, None, 1);
            (k, rep, plan.is_some())
        });
        for (r, (k, rep, has_plan)) in out.results.iter().enumerate() {
            assert!(rep.cleanup_cap_hit, "rank {r}: cap must be hit");
            assert_eq!(rep.cleanup_rounds, 1, "rank {r}: exactly the capped rounds ran");
            assert!(!has_plan, "rank {r}: a capped-out sort must not record a plan");
            assert_eq!(k.len(), counts[r], "rank {r}: counts preserved");
            assert!(is_sorted(k), "rank {r}: local order preserved");
        }
    }

    #[test]
    fn globally_sorted_check() {
        let out = run(4, MachineModel::ideal(), |comm| {
            let sorted_keys: Vec<u64> = vec![comm.rank() as u64 * 10, comm.rank() as u64 * 10 + 5];
            let a = is_globally_sorted(comm, &sorted_keys);
            // Reverse rank order -> not globally sorted.
            let bad: Vec<u64> = vec![(3 - comm.rank()) as u64 * 10];
            let b = is_globally_sorted(comm, &bad);
            (a, b)
        });
        for (a, b) in out.results {
            assert!(a);
            assert!(!b);
        }
    }

    #[test]
    fn empty_world_edge_cases() {
        check_global_sort(1, |_| vec![3, 1, 2]);
        check_global_sort(4, |_| Vec::new());
    }
}
