//! Batcher's merge-exchange sorting network (Knuth, TAOCP Vol. 3,
//! Algorithm 5.2.2M), grouped into rounds of disjoint comparators.
//!
//! The merge-based parallel sort runs this network over *ranks*: each
//! comparator `(i, j)` becomes a pairwise compare-split step between ranks
//! `i` and `j` (paper, Sect. III-B: "all processes perform pair-wise merging
//! steps according to Batcher's Merge-Exchange sorting network").

/// All comparators of Batcher's merge-exchange network for `n` elements, in
/// execution order.
pub fn merge_exchange_comparators(n: usize) -> Vec<(usize, usize)> {
    let mut comparators = Vec::new();
    if n < 2 {
        return comparators;
    }
    let t = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
    let mut p = 1usize << (t - 1);
    while p > 0 {
        let mut q = 1usize << (t - 1);
        let mut r = 0usize;
        let mut d = p;
        loop {
            for i in 0..n.saturating_sub(d) {
                if i & p == r {
                    comparators.push((i, i + d));
                }
            }
            if q != p {
                d = q - p;
                q /= 2;
                r = p;
            } else {
                break;
            }
        }
        p /= 2;
    }
    comparators
}

/// The comparators of [`merge_exchange_comparators`] greedily grouped into
/// rounds such that no element appears twice within a round (so every rank
/// participates in at most one compare-split per round, and rounds can be
/// executed as parallel pairwise exchanges).
pub fn merge_exchange_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    let comparators = merge_exchange_comparators(n);
    let mut rounds: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut busy_round = vec![0usize; n]; // element i is busy through round busy_round[i]-1
    for (a, b) in comparators {
        // The comparator must run after every earlier comparator touching a or
        // b, to preserve network order.
        let round = busy_round[a].max(busy_round[b]);
        if round == rounds.len() {
            rounds.push(Vec::new());
        }
        rounds[round].push((a, b));
        busy_round[a] = round + 1;
        busy_round[b] = round + 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Execute the network on a scalar array (comparator = compare-exchange).
    fn apply_network(n: usize, data: &mut [u64]) {
        for (a, b) in merge_exchange_comparators(n) {
            if data[a] > data[b] {
                data.swap(a, b);
            }
        }
    }

    #[test]
    fn zero_one_principle_small_n() {
        // A comparator network sorts all inputs iff it sorts all 0-1 inputs.
        for n in 1..=10usize {
            for bits in 0..(1u32 << n) {
                let mut data: Vec<u64> = (0..n).map(|i| ((bits >> i) & 1) as u64).collect();
                apply_network(n, &mut data);
                assert!(data.windows(2).all(|w| w[0] <= w[1]), "n={n} bits={bits:b} -> {data:?}");
            }
        }
    }

    #[test]
    fn sorts_random_permutations() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 31, 64] {
            let mut data: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % (n as u64)).collect();
            apply_network(n, &mut data);
            assert!(data.windows(2).all(|w| w[0] <= w[1]), "n={n}: {data:?}");
        }
    }

    #[test]
    fn rounds_have_disjoint_elements() {
        for n in [2usize, 7, 16, 33, 256] {
            for round in merge_exchange_rounds(n) {
                let mut seen = vec![false; n];
                for (a, b) in round {
                    assert!(!seen[a] && !seen[b], "element reused within a round");
                    seen[a] = true;
                    seen[b] = true;
                }
            }
        }
    }

    #[test]
    fn rounds_preserve_network_order() {
        // Executing round-by-round must equal executing the raw comparator
        // sequence (both sort, and per-pair order relations are respected by
        // construction; verify end-to-end on permutations).
        for n in [4usize, 9, 16, 27] {
            let base: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 1000).collect();
            let mut a = base.clone();
            apply_network(n, &mut a);
            let mut b = base;
            for round in merge_exchange_rounds(n) {
                for (x, y) in round {
                    if b[x] > b[y] {
                        b.swap(x, y);
                    }
                }
            }
            assert_eq!(a, b);
        }
    }

    #[test]
    fn round_count_is_polylog() {
        // Merge-exchange has ~ t(t+1)/2 rounds with t = ceil(log2 n).
        let rounds = merge_exchange_rounds(256).len();
        assert!(rounds <= 8 * 9 / 2 + 1, "rounds = {rounds}");
        assert!(merge_exchange_rounds(1).is_empty());
        assert_eq!(merge_exchange_rounds(2).len(), 1);
    }
}
