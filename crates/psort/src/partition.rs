//! Partition-based parallel sorting (the method of Hofmann/Rünger, HPCC'11,
//! used by the FMM solver for unsorted particle data — paper Sect. III-A).
//!
//! Structure: local sort, global selection of `P-1` splitter keys that divide
//! the data into (nearly) equal parts, an **all-to-all** exchange routing each
//! bucket to its target rank, and a local k-way merge. The splitter selection
//! starts from sampled estimates and refines them with a few rounds of global
//! histogramming — the original partitioning algorithm likewise converges in
//! a small number of collective rounds.

use simcomm::{Comm, Work};

use crate::local::{bucket_bounds, kway_merge, radix_sort_by_key};

/// Maximum bisection rounds for splitter refinement: enough to exhaust a
/// full 64-bit key range. Sampling provides the first probes, the bracket is
/// the global key min/max, and the loop exits as soon as every splitter has
/// converged — for the clustered Morton keys of an FMM tree this takes about
/// `3 * level` rounds.
const MAX_REFINE_ROUNDS: usize = 64;

/// Per-rank oversampling factor for the initial splitter estimates.
const OVERSAMPLE: usize = 16;

/// Report of one partition-based parallel sort execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionSortReport {
    /// Global histogram refinement rounds performed.
    pub refine_rounds: u64,
    /// Elements this rank sent to other ranks (excluding kept ones).
    pub sent_elems: u64,
    /// Elements this rank received from other ranks.
    pub recv_elems: u64,
}

/// Sort `(keys, values)` globally: after the call, each rank holds a locally
/// sorted run and the concatenation over ranks (in rank order) is globally
/// sorted. Bucket sizes are balanced to the global mean as far as duplicate
/// keys allow.
///
/// This is a synchronizing collective operation: all ranks must call it.
pub fn partition_sort_by_key<T>(
    comm: &mut Comm,
    keys: Vec<u64>,
    values: Vec<T>,
) -> (Vec<u64>, Vec<T>, PartitionSortReport)
where
    T: Copy + Send + 'static,
{
    assert_eq!(keys.len(), values.len());
    let p = comm.size();
    let mut keys = keys;
    let mut values = values;
    let mut report = PartitionSortReport::default();

    // --- Local sort ---
    comm.enter_phase("sort:local");
    let passes = radix_sort_by_key(&mut keys, &mut values);
    comm.compute(Work::SortCmp, (passes as f64) * keys.len() as f64);
    comm.exit_phase();

    if p == 1 {
        return (keys, values, report);
    }

    // --- Global targets (and key range, in one reduction) ---
    comm.enter_phase("sort:splitters");
    let n_local = keys.len() as u64;
    let local_min = keys.first().copied().unwrap_or(u64::MAX);
    let local_max = keys.last().copied().unwrap_or(0);
    let (n_total, global_min, global_max) = comm
        .allreduce((n_local, local_min, local_max), |a, b| (a.0 + b.0, a.1.min(b.1), a.2.max(b.2)));
    if n_total == 0 {
        comm.exit_phase();
        return (keys, values, report);
    }
    // Target prefix counts: splitter k separates the first (k+1)*n/p elements.
    let targets: Vec<u64> = (1..p as u64).map(|k| k * n_total / p as u64).collect();
    // Accepted deviation from the exact target: the original partitioning
    // algorithm supports such an imbalance tolerance to terminate in few
    // rounds; 5 % of the mean bucket size is plenty for load balance and
    // lets well-sampled estimates pass on the first refinement round.
    let tolerance = (n_total / (20 * p as u64)).max(1);

    // --- Initial splitter estimates from regular sampling ---
    let mut samples: Vec<u64> = Vec::with_capacity(OVERSAMPLE);
    if !keys.is_empty() {
        for s in 0..OVERSAMPLE {
            let idx = (s * keys.len()) / OVERSAMPLE + keys.len() / (2 * OVERSAMPLE);
            samples.push(keys[idx.min(keys.len() - 1)]);
        }
    }
    let mut all_samples = comm.allgatherv(samples);
    all_samples.sort_unstable();
    comm.compute(
        Work::SortCmp,
        (all_samples.len().max(1) as f64) * (all_samples.len().max(2) as f64).log2(),
    );

    // Bracket the splitters by the global key range; refine by global
    // histogramming (binary search in key space for the smallest key whose
    // global count of strictly-smaller keys reaches the target).
    let nsplit = p - 1;
    let mut lo = vec![global_min; nsplit];
    let mut hi = vec![global_max.saturating_add(1); nsplit];
    // First probe: the sample estimates themselves (fast path when sampling
    // is already exact); afterwards plain bisection of [lo, hi].
    let mut probe: Vec<u64> = (0..nsplit)
        .map(|k| {
            if all_samples.is_empty() {
                u64::MAX / 2
            } else {
                let est_idx = ((k + 1) * all_samples.len()) / p;
                all_samples[est_idx.min(all_samples.len() - 1)]
            }
        })
        .collect();

    for _round in 0..MAX_REFINE_ROUNDS {
        // Count keys strictly below each probe, globally.
        let local_counts: Vec<u64> =
            probe.iter().map(|&s| keys.partition_point(|&k| k < s) as u64).collect();
        comm.compute(Work::SortCmp, (nsplit as f64) * (keys.len().max(2) as f64).log2());
        let global_counts =
            comm.allreduce(local_counts, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());
        report.refine_rounds += 1;

        let mut all_done = true;
        for k in 0..nsplit {
            if lo[k] >= hi[k] {
                continue;
            }
            if global_counts[k].abs_diff(targets[k]) <= tolerance {
                // Close enough: accept this splitter as-is.
                lo[k] = probe[k];
                hi[k] = probe[k];
                continue;
            }
            if global_counts[k] < targets[k] {
                lo[k] = probe[k].saturating_add(1);
            } else {
                hi[k] = probe[k];
            }
            if lo[k] < hi[k] {
                all_done = false;
                probe[k] = lo[k] + (hi[k] - lo[k]) / 2;
            } else {
                probe[k] = lo[k];
            }
        }
        if all_done {
            break;
        }
    }
    let mut splitters: Vec<u64> = (0..nsplit).map(|k| probe[k].max(lo[k]).min(hi[k])).collect();
    // Splitters must be non-decreasing (duplicate-heavy data can leave
    // unresolved brackets crossing); enforce monotonicity.
    for k in 1..nsplit {
        if splitters[k] < splitters[k - 1] {
            splitters[k] = splitters[k - 1];
        }
    }
    comm.exit_phase();

    // --- All-to-all bucket exchange ---
    comm.enter_phase("sort:exchange");
    let bounds = bucket_bounds(&keys, &splitters);
    let mut sends: Vec<(usize, Vec<(u64, T)>)> = Vec::new();
    for dst in 0..p {
        let start = bounds[dst];
        let end = if dst + 1 < p { bounds[dst + 1] } else { keys.len() };
        if start == end {
            continue;
        }
        let buf: Vec<(u64, T)> = (start..end).map(|i| (keys[i], values[i])).collect();
        if dst != comm.rank() {
            report.sent_elems += (end - start) as u64;
        }
        comm.compute(Work::ByteCopy, ((end - start) * std::mem::size_of::<(u64, T)>()) as f64);
        sends.push((dst, buf));
    }
    let received = comm.alltoallv(sends);
    comm.exit_phase();

    // --- Local k-way merge of the received runs (each run is sorted) ---
    comm.enter_phase("sort:merge");
    let mut runs: Vec<(Vec<u64>, Vec<T>)> = Vec::with_capacity(received.len());
    let mut total = 0usize;
    for (src, buf) in received {
        if src != comm.rank() {
            report.recv_elems += buf.len() as u64;
        }
        total += buf.len();
        let (rk, rv): (Vec<u64>, Vec<T>) = buf.into_iter().unzip();
        runs.push((rk, rv));
    }
    let nruns = runs.len().max(2) as f64;
    let (out_keys, out_values) = kway_merge(runs);
    comm.compute(Work::SortCmp, (total as f64) * nruns.log2());
    comm.exit_phase();

    (out_keys, out_values, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcomm::{run, MachineModel};

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Run a world, sort per-rank data, and verify the global result.
    fn check_global_sort(p: usize, local_data: impl Fn(usize) -> Vec<u64> + Send + Sync) {
        let out = run(p, MachineModel::ideal(), |comm| {
            let keys = local_data(comm.rank());
            let values: Vec<u64> = keys.iter().map(|k| k ^ 0xabcd).collect();
            let n_in = keys.len();
            let (k, v, _rep) = partition_sort_by_key(comm, keys, values);
            (n_in, k, v)
        });
        // Globally sorted and a permutation of the input.
        let mut all_in: Vec<u64> = (0..p).flat_map(&local_data).collect();
        let mut all_out: Vec<u64> = Vec::new();
        let mut prev_last: Option<u64> = None;
        let total_in: usize = all_in.len();
        let mut total_out = 0;
        for (_, k, v) in &out.results {
            assert!(k.windows(2).all(|w| w[0] <= w[1]), "locally sorted");
            for (key, val) in k.iter().zip(v) {
                assert_eq!(*val, *key ^ 0xabcd, "payload must follow its key");
            }
            if let (Some(pl), Some(&first)) = (prev_last, k.first()) {
                assert!(pl <= first, "rank boundaries must be ordered");
            }
            if let Some(&l) = k.last() {
                prev_last = Some(l);
            }
            total_out += k.len();
            all_out.extend_from_slice(k);
        }
        assert_eq!(total_in, total_out);
        all_in.sort_unstable();
        let mut sorted_out = all_out;
        sorted_out.sort_unstable();
        assert_eq!(all_in, sorted_out, "output must be a permutation of input");
    }

    #[test]
    fn sorts_random_data() {
        check_global_sort(8, |r| (0..200).map(|i| splitmix((r * 1000 + i) as u64)).collect());
    }

    #[test]
    fn sorts_already_sorted_data() {
        check_global_sort(4, |r| ((r * 100) as u64..(r * 100 + 100) as u64).collect());
    }

    #[test]
    fn sorts_reverse_distributed_data() {
        // Rank r holds the keys that belong on rank p-1-r.
        check_global_sort(6, |r| {
            let base = ((5 - r) * 50) as u64;
            (base..base + 50).collect()
        });
    }

    #[test]
    fn sorts_skewed_sizes() {
        check_global_sort(5, |r| (0..r * 80).map(|i| splitmix((r + i * 7) as u64)).collect());
    }

    #[test]
    fn sorts_with_empty_ranks() {
        check_global_sort(4, |r| {
            if r % 2 == 0 {
                Vec::new()
            } else {
                (0..150).map(|i| splitmix((r * 31 + i) as u64)).collect()
            }
        });
    }

    #[test]
    fn sorts_all_empty() {
        check_global_sort(3, |_| Vec::new());
    }

    #[test]
    fn sorts_heavy_duplicates() {
        check_global_sort(4, |r| (0..300).map(|i| ((r + i) % 5) as u64).collect());
    }

    #[test]
    fn single_rank_is_local_sort() {
        check_global_sort(1, |_| vec![5, 3, 9, 1, 1, 0]);
    }

    #[test]
    fn balances_bucket_sizes() {
        let p = 8;
        let per = 512;
        let out = run(p, MachineModel::ideal(), move |comm| {
            let keys: Vec<u64> =
                (0..per).map(|i| splitmix((comm.rank() * per + i) as u64)).collect();
            let values = keys.clone();
            let (k, _, rep) = partition_sort_by_key(comm, keys, values);
            (k.len(), rep.refine_rounds)
        });
        let avg = per;
        for &(n, rounds) in &out.results {
            assert!(
                n as f64 > 0.5 * avg as f64 && (n as f64) < 1.5 * avg as f64,
                "bucket size {n} too far from mean {avg}"
            );
            assert!(rounds <= MAX_REFINE_ROUNDS as u64);
        }
    }

    #[test]
    fn balances_clustered_small_range_keys() {
        // Morton keys of a shallow FMM tree span only a few hundred distinct
        // values; the splitter search must still balance (regression test:
        // a fixed-round bisection over the full u64 range cannot converge
        // for such clustered keys).
        let p = 16;
        let per = 500;
        let out = run(p, MachineModel::ideal(), move |comm| {
            // Keys in 0..512 only, scattered across ranks.
            let keys: Vec<u64> =
                (0..per).map(|i| splitmix((comm.rank() * per + i) as u64) % 512).collect();
            let values = keys.clone();
            let (k, _, rep) = partition_sort_by_key(comm, keys, values);
            (k.len(), rep.refine_rounds)
        });
        let avg = per;
        for &(n, rounds) in &out.results {
            assert!(
                n > avg / 2 && n < 2 * avg,
                "clustered keys must still balance: got {n}, mean {avg}"
            );
            assert!(rounds <= 12, "small key range must converge quickly: {rounds}");
        }
    }

    #[test]
    fn almost_sorted_input_stays_mostly_local() {
        // Grid-like keys already in rank order: almost nothing should move.
        let p = 8;
        let per = 256;
        let out = run(p, MachineModel::ideal(), move |comm| {
            let base = (comm.rank() * per) as u64;
            let keys: Vec<u64> = (0..per as u64).map(|i| base + i).collect();
            let values = keys.clone();
            let (_, _, rep) = partition_sort_by_key(comm, keys, values);
            rep
        });
        for rep in &out.results {
            // The splitter tolerance (2 % of the mean bucket) may shift a few
            // boundary elements, but the bulk must stay local.
            assert!(
                rep.sent_elems <= per as u64 / 25,
                "perfectly placed data must barely move: {rep:?}"
            );
        }
    }
}
