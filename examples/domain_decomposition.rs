//! Visualize the two domain decomposition schemes of the paper's Fig. 2: the
//! Z-order space-filling curve used by the FMM solver (left) and the
//! Cartesian process grid used by the P2NFFT-style solver (right), for a 2D
//! slice of a particle system and four processes.
//!
//! Run with: `cargo run --release --example domain_decomposition`

use particles::{grid_rank_of, zorder, SystemBox, Vec3};

fn main() {
    let cells = 8usize; // 8x8 cells in the visualized slice
    let nprocs = 4usize;

    println!("Domain decomposition of a 2D slice, {nprocs} processes");
    println!("(paper Fig. 2: each digit is the rank owning that cell)\n");

    // --- Left: Z-order curve decomposition (FMM). Cells are numbered along
    // the Morton curve and split into equal contiguous segments. ---
    let total = cells * cells;
    let per = total / nprocs;
    println!("Z-order curve (FMM solver):");
    for y in (0..cells).rev() {
        let mut row = String::new();
        for x in 0..cells {
            // 2D Morton index: interleave x and y bits (use the 3D encoder
            // with z = 0; every third bit stays zero, order is preserved).
            let k3 = zorder::encode(x as u32, y as u32, 0);
            // Rank by position along the 2D curve: count cells with a
            // smaller Morton key.
            let ordinal = (0..total)
                .filter(|&i| {
                    let (ix, iy) = (i % cells, i / cells);
                    zorder::encode(ix as u32, iy as u32, 0) < k3
                })
                .count();
            let rank = (ordinal / per).min(nprocs - 1);
            row.push_str(&format!("{rank} "));
        }
        println!("  {row}");
    }

    // --- Right: Cartesian process grid (P2NFFT-style solver). ---
    let bbox = SystemBox::cubic(cells as f64);
    let dims = [2, 2, 1];
    println!("\nCartesian process grid (P2NFFT solver, {}x{} grid):", dims[0], dims[1]);
    for y in (0..cells).rev() {
        let mut row = String::new();
        for x in 0..cells {
            let p = Vec3::new(x as f64 + 0.5, y as f64 + 0.5, 0.5);
            let rank = grid_rank_of(dims, &bbox, p);
            row.push_str(&format!("{rank} "));
        }
        println!("  {row}");
    }

    println!("\nThe Z-order decomposition assigns each process a segment of a");
    println!("space-filling curve (irregular but balanced regions following the");
    println!("particle sort order); the grid decomposition assigns rectangular");
    println!("subdomains by position. Coupling solvers that use different");
    println!("schemes is what makes efficient particle data redistribution");
    println!("necessary — the subject of the paper.");
}
