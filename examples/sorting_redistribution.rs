//! Walk through the paper's Figs. 4 and 5 on a tiny traced example: how the
//! FMM solver restores the original particle order and distribution
//! (Method A, Fig. 4), and how resort indices are created by inverting the
//! initial numbering (Method B, Fig. 5).
//!
//! Run with: `cargo run --release --example sorting_redistribution`

use atasp::{build_resort_indices, decode_index, encode_index, resort, ExchangeMode};
use psort::partition_sort_by_key;
use simcomm::{run, MachineModel};

fn main() {
    let nprocs = 2;
    // Two ranks, three particles each, with interleaved sort keys — like the
    // example of the paper's Fig. 4/5 where the particles of both processes
    // mix when sorted into Z-order boxes.
    let out = run(nprocs, MachineModel::ideal(), |comm| {
        let me = comm.rank();
        // Particle "names" A..F; keys chosen so that sorting interleaves the
        // two ranks' particles.
        let (names, keys): (Vec<char>, Vec<u64>) = if me == 0 {
            (vec!['A', 'B', 'C'], vec![5, 1, 4])
        } else {
            (vec!['D', 'E', 'F'], vec![0, 3, 2])
        };
        // Initial numbering: a 64-bit code of (initial process, position) per
        // particle — "a consecutive numbering of the initial particles is
        // used to preserve the information about their original order".
        let origin: Vec<u64> = (0..names.len()).map(|i| encode_index(me, i)).collect();
        let payload: Vec<(char, u64)> = names.iter().copied().zip(origin.iter().copied()).collect();

        // --- Sorting the particles into boxes (parallel sort by key) ---
        let (sorted_keys, sorted_payload, _) = partition_sort_by_key(comm, keys.clone(), payload);
        let sorted_names: Vec<char> = sorted_payload.iter().map(|(c, _)| *c).collect();
        let sorted_origin: Vec<u64> = sorted_payload.iter().map(|(_, o)| *o).collect();

        // --- Fig. 4: restore the original order and distribution by sending
        // every particle back to its initial process and position. ---
        let targets: Vec<usize> = sorted_origin.iter().map(|&o| decode_index(o).0).collect();
        let tagged: Vec<(u32, char)> = sorted_origin
            .iter()
            .zip(&sorted_names)
            .map(|(&o, &c)| (decode_index(o).1 as u32, c))
            .collect();
        let received = atasp::alltoall_specific(comm, &tagged, &targets, &ExchangeMode::Collective);
        let mut restored = vec!['?'; names.len()];
        for (pos, c) in received {
            restored[pos as usize] = c;
        }

        // --- Fig. 5: create resort indices by inverting the numbering. ---
        let resort_ix = build_resort_indices(comm, &sorted_origin, names.len());
        // Apply them to some additional per-particle data (its name here,
        // shipped as the code point — resortable data is plain old bytes).
        let codes: Vec<u32> = names.iter().map(|&c| c as u32).collect();
        let moved: Vec<char> =
            resort(comm, &codes, &resort_ix, sorted_names.len(), &ExchangeMode::Collective)
                .into_iter()
                .map(|c| char::from_u32(c).expect("round-tripped code point"))
                .collect();

        (names, keys, sorted_names, sorted_keys, restored, resort_ix, moved)
    });

    println!("Tracing the paper's Fig. 4 (restore) and Fig. 5 (resort indices)\n");
    for (r, (names, keys, sorted, skeys, restored, ix, moved)) in out.results.iter().enumerate() {
        println!("process {r}:");
        println!("  initial particles:          {names:?} with sort keys {keys:?}");
        println!("  after sorting into boxes:   {sorted:?} with keys {skeys:?}");
        println!("  after restoring (Fig. 4):   {restored:?}  <- original order again");
        let decoded: Vec<(usize, usize)> = ix.iter().map(|&x| decode_index(x)).collect();
        println!("  resort indices (Fig. 5):    {decoded:?}  (target process, target position)");
        println!("  additional data resorted:   {moved:?}  <- matches the sorted order\n");
        assert_eq!(restored, names);
        assert_eq!(moved, sorted);
    }
    println!("Method A ships whole particles back; Method B ships only the");
    println!("application's additional data forward, using the resort indices.");
}
