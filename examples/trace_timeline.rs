//! Record a communication trace of one coupled solver execution and write it
//! as CSV — a timeline of every point-to-point and collective operation in
//! virtual time, per rank.
//!
//! Run with: `cargo run --release --example trace_timeline`

use fcs::{Fcs, SolverKind};
use particles::{local_set, InitialDistribution, IonicCrystal};
use simcomm::{run_traced, CartGrid, MachineModel, TraceKind};

fn main() {
    let crystal = IonicCrystal::cubic(8, 1.0, 0.15, 5);
    let bbox = crystal.system_box();
    let nprocs = 8;

    let out = run_traced(nprocs, MachineModel::juropa_like(), |comm| {
        let set = local_set(
            &crystal,
            InitialDistribution::Random,
            comm.rank(),
            comm.size(),
            CartGrid::balanced(comm.size()).dims(),
        );
        let mut h = Fcs::init(SolverKind::P2Nfft, comm.size());
        h.set_common(bbox);
        h.set_tolerance(1e-2);
        h.tune(comm, set.pos(), set.charge());
        h.set_resort(true);
        let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
        o.timings.total
    });

    // Summaries per rank.
    println!("communication timeline of one Method B solver execution\n");
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "rank", "events", "p2p time", "coll time", "total comm", "solver total"
    );
    for (r, tr) in out.traces.iter().enumerate() {
        let p2p = tr.time_in(TraceKind::Send) + tr.time_in(TraceKind::Recv);
        let coll = tr.time_in(TraceKind::Barrier)
            + tr.time_in(TraceKind::Bcast)
            + tr.time_in(TraceKind::Reduce)
            + tr.time_in(TraceKind::Gather)
            + tr.time_in(TraceKind::Alltoallv);
        println!(
            "{:<6} {:>8} {:>10.1}us {:>10.1}us {:>10.1}us {:>10.1}us",
            r,
            tr.events.len(),
            p2p * 1e6,
            coll * 1e6,
            (p2p + coll) * 1e6,
            out.results[r] * 1e6
        );
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let f = std::fs::File::create("results/trace_timeline.csv").expect("create csv");
    simcomm::write_trace_csv(std::io::BufWriter::new(f), &out.traces).expect("write trace");
    println!(
        "\nwrote results/trace_timeline.csv (rank,kind,t_start,t_end,bytes,peer,nranks,phase,corr)"
    );
    println!("summarize it with: cargo run -p bench --bin commstats -- --trace results/trace_timeline.csv");
}
