//! Explore the virtual-time machine models: what the same communication
//! pattern costs on a switched-fabric cluster vs a torus supercomputer, and
//! why the paper's "exploit the limited particle movement" optimization only
//! pays off on the torus (paper Sect. IV-D).
//!
//! Run with: `cargo run --release --example machine_models`

use simcomm::{run, CartGrid, MachineModel};

/// One neighbourhood exchange (26 partners, `bytes` each) measured as a
/// collective all-to-all-v and as point-to-point messages.
fn measure(model: MachineModel, p: usize, bytes: usize) -> (f64, f64) {
    let out = run(p, model, move |comm| {
        let grid = CartGrid::balanced(comm.size());
        let partners = grid.neighbors26(comm.rank());
        let payload = vec![0u8; bytes];

        // Collective: a sparse alltoallv carrying only neighbour traffic.
        let t0 = comm.clock();
        let sends: Vec<(usize, Vec<u8>)> = partners.iter().map(|&q| (q, payload.clone())).collect();
        let _ = comm.alltoallv(sends);
        let coll = comm.clock() - t0;

        // Point-to-point: the same traffic as pairwise messages.
        let t1 = comm.clock();
        let data: Vec<(usize, Vec<u8>)> = partners.iter().map(|&q| (q, payload.clone())).collect();
        let _ = comm.neighbor_exchange(&partners, data, 99);
        let p2p = comm.clock() - t1;
        (coll, p2p)
    });
    let coll = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let p2p = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
    (coll, p2p)
}

fn main() {
    let bytes = 4096;
    println!("26-neighbourhood exchange of {bytes} B per partner: collective vs p2p\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14} | {:>14} {:>14} {:>14}",
        "", "switched", "", "", "torus", "", ""
    );
    println!(
        "{:<10} {:>14} {:>14} {:>10} | {:>14} {:>14} {:>10}",
        "procs", "alltoallv", "p2p", "winner", "alltoallv", "p2p", "winner"
    );
    for p in [16usize, 64, 256, 1024, 4096] {
        let (cs, ps) = measure(MachineModel::juropa_like(), p, bytes);
        let (ct, pt) = measure(MachineModel::juqueen_like(), p, bytes);
        let w = |c: f64, q: f64| if c <= q { "coll" } else { "p2p" };
        println!(
            "{:<10} {:>12.1}us {:>12.1}us {:>10} | {:>12.1}us {:>12.1}us {:>10}",
            p,
            cs * 1e6,
            ps * 1e6,
            w(cs, ps),
            ct * 1e6,
            pt * 1e6,
            w(ct, pt)
        );
    }
    println!("\nOn the switched fabric the collective stays competitive at every");
    println!("size (the paper found p2p slightly *slower* there), while on the");
    println!("torus the collective's P-dependent costs grow until neighbourhood");
    println!("p2p wins decisively — the Fig. 9 (right) crossover.");
}
