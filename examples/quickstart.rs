//! Quickstart: couple a long-range solver to a small particle system through
//! the `fcs` library interface and compare Method A (restore the original
//! particle order and distribution) against Method B (use the solver's
//! changed order with resort indices).
//!
//! Run with: `cargo run --release --example quickstart`

use fcs::{Fcs, SolverKind};
use particles::{local_set, InitialDistribution, IonicCrystal};
use simcomm::{run, CartGrid, MachineModel};

fn main() {
    // A small ionic crystal (rock-salt ± lattice with thermal jitter),
    // standing in for the paper's melting-silica system.
    let crystal = IonicCrystal::cubic(8, 1.0, 0.15, 42);
    let bbox = crystal.system_box();
    let nprocs = 8;
    println!(
        "system: {} ions in a {:.0}^3 periodic box, {} simulated processes\n",
        crystal.n(),
        bbox.lengths.x(),
        nprocs
    );

    // Everything inside `run` executes once per simulated process (rank),
    // exactly like an MPI program.
    let out = run(nprocs, MachineModel::juropa_like(), |comm| {
        // Each rank generates its local share of the system (uniformly
        // random assignment of particles to processes).
        let dims = CartGrid::balanced(comm.size()).dims();
        let set = local_set(&crystal, InitialDistribution::Random, comm.rank(), comm.size(), dims);

        // fcs_init + fcs_set_common + fcs_tune: create a solver handle.
        let mut handle = Fcs::init(SolverKind::Fmm, comm.size());
        handle.set_common(bbox);
        handle.set_tolerance(1e-3);
        handle.tune(comm, set.pos(), set.charge());

        // --- Method A: results come back in the submitted order. ---
        let a = handle.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
        assert!(!handle.resorted());
        assert_eq!(a.pos, set.pos(), "method A restores the original order");

        // --- Method B: results come back in the solver's Z-order; use the
        // resort indices to bring additional per-particle data along. ---
        handle.set_resort(true);
        let b = handle.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
        assert!(handle.resorted());
        let tags: Vec<f64> = set.id().iter().map(|&i| i as f64).collect();
        let moved_tags = handle.resort_floats(comm, &tags);
        for (tag, id) in moved_tags.iter().zip(&b.id) {
            assert_eq!(*tag, *id as f64, "resorted data follows its particle");
        }

        // Both methods compute identical physics.
        let energy = |o: &particles::SolverOutput| {
            0.5 * o.potential.iter().zip(&o.charge).map(|(p, q)| p * q).sum::<f64>()
        };
        (energy(&a), energy(&b), a.timings, b.timings)
    });

    let ea: f64 = out.results.iter().map(|r| r.0).sum();
    let eb: f64 = out.results.iter().map(|r| r.1).sum();
    println!("total electrostatic energy, method A: {ea:.6}");
    println!("total electrostatic energy, method B: {eb:.6}");
    println!(
        "per-ion energy {:.6} (Madelung reference for the perfect crystal: {:.6})",
        ea / crystal.n() as f64,
        particles::reference::madelung_energy_per_ion(1.0)
    );
    let ta = out.results.iter().map(|r| r.2.total).fold(0.0, f64::max);
    let tb = out.results.iter().map(|r| r.3.total).fold(0.0, f64::max);
    println!("\nvirtual solver runtime, method A: {:.3} ms", ta * 1e3);
    println!("virtual solver runtime, method B: {:.3} ms", tb * 1e3);
    println!("(method B pays off over repeated runs in a simulation loop — see");
    println!(" examples/coupled_md.rs and the fig7/fig8 benchmark harnesses)");
}
