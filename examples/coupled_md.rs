//! A complete coupled particle dynamics simulation: the paper's Fig. 3
//! pseudocode driving both long-range solvers with Method A and Method B,
//! reporting per-step timing breakdowns and energy conservation.
//!
//! Run with: `cargo run --release --example coupled_md -- [steps] [procs]`

use fcs::SolverKind;
use mdsim::{simulate, SimConfig};
use particles::{local_set, InitialDistribution, IonicCrystal};
use simcomm::{run, CartGrid, MachineModel};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args.get(1).map(|s| s.parse().expect("steps")).unwrap_or(12);
    let nprocs: usize = args.get(2).map(|s| s.parse().expect("procs")).unwrap_or(16);

    let crystal = IonicCrystal::cubic(10, 2.0, 0.3, 7);
    let bbox = crystal.system_box();
    println!(
        "coupled MD: {} ions, {} simulated processes, {} steps, juropa-like machine\n",
        crystal.n(),
        nprocs,
        steps
    );

    for solver in [SolverKind::Fmm, SolverKind::P2Nfft] {
        for (label, resort) in
            [("method A (restore original)", false), ("method B (use changed)", true)]
        {
            let crystal = crystal.clone();
            let cfg = SimConfig {
                solver,
                resort,
                steps,
                tolerance: 1e-2,
                dt: mdsim::suggested_dt(crystal.spacing, 1.0),
                ..SimConfig::default()
            };
            let out = run(nprocs, MachineModel::juropa_like(), move |comm| {
                let dims = CartGrid::balanced(comm.size()).dims();
                let set = local_set(
                    &crystal,
                    InitialDistribution::Random,
                    comm.rank(),
                    comm.size(),
                    dims,
                );
                simulate(comm, bbox, set, &cfg)
            });
            // Aggregate: slowest rank per component, per step.
            let r0 = &out.results[0].records;
            let total: f64 = (0..r0.len())
                .map(|s| out.results.iter().map(|r| r.records[s].total).fold(0.0, f64::max))
                .sum();
            let redist: f64 = (0..r0.len())
                .map(|s| {
                    out.results
                        .iter()
                        .map(|r| {
                            let rec = &r.records[s];
                            rec.sort + rec.restore + rec.resort
                        })
                        .fold(0.0, f64::max)
                })
                .sum();
            let e0 = r0[0].energy;
            let e_end = r0[r0.len() - 1].energy;
            println!(
                "{solver:?} / {label}: total {total:8.3} ms, redistribution {redist:7.3} ms \
                 ({:4.1} %), energy drift {:+.3} %",
                100.0 * redist / total,
                100.0 * (e_end - e0) / e0.abs(),
                total = total * 1e3,
                redist = redist * 1e3,
            );
        }
    }
    println!("\nMethod B trades the per-step restore for a one-off resort of the");
    println!("application's additional data; from the second step on it re-sorts");
    println!("an almost-sorted particle set — the paper's central optimization.");
}
