//! # coupled-particle-redistribution
//!
//! A reproduction of M. Hofmann and G. Rünger, *Efficient Data Redistribution
//! Methods for Coupled Parallel Particle Codes* (ICPP 2013): a coupling
//! library for application-independent long-range solvers with two particle
//! data redistribution methods, built on a simulated distributed-memory
//! machine.
//!
//! This umbrella crate re-exports the workspace's public crates; see the
//! README for the architecture overview and `DESIGN.md` for the substitution
//! rationale and per-experiment index.
//!
//! * [`simcomm`] — the MPI-like simulated runtime with virtual-time machine
//!   models (switched fabric / torus).
//! * [`psort`] — partition-based and merge-based parallel sorting.
//! * [`atasp`] — fine-grained data redistribution with duplication and the
//!   resort operation.
//! * [`particles`] — particle data, geometry, Z-Morton ordering, synthetic
//!   systems and reference solvers.
//! * [`fmm`] — the tree-based Fast Multipole Method solver.
//! * [`pmsolver`] — the grid-based particle-mesh Ewald solver.
//! * [`fcs`] — the coupling library interface (the paper's contribution).
//! * [`mdsim`] — the particle dynamics simulation application.

#![warn(missing_docs)]

pub use atasp;
pub use fcs;
pub use fmm;
pub use mdsim;
pub use particles;
pub use pmsolver;
pub use psort;
pub use simcomm;
